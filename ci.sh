#!/usr/bin/env bash
# CI entry point: the tier-1 verification run three times, plus
# fault-injection and checkpoint/resume legs.
#
#   1. Release, warnings-as-errors — the production configuration must
#      compile warning-clean under -Wall -Wextra -Wshadow -Wconversion
#      -Wdouble-promotion -Wold-style-cast.
#   2. Debug, AddressSanitizer + UndefinedBehaviorSanitizer — the full
#      ctest suite must pass with zero sanitizer reports. Recovery is
#      disabled at compile time (-fno-sanitize-recover=all) and
#      halt_on_error is set here, so any report fails the suite.
#   3. Debug, ThreadSanitizer with HMD_THREADS=4 — forces the capture and
#      grid paths onto 4 workers even where a test does not ask for
#      parallelism, so every data race in the deterministic parallel layer
#      is a ctest failure.
#   4. Fault-injection leg (reuses the ASan/UBSan tree): the fault-sweep
#      ablation under the heavy profile must quarantine rather than crash,
#      and hmd_lint over a lightly-faulted capture must keep the
#      quarantine/imputation budgets — both with sanitizers watching the
#      error-handling paths that a clean run never executes.
#   5. Checkpoint/resume leg (reuses the Release tree): a checkpointed
#      heavy-fault campaign is "killed" (one app checkpoint plus the
#      quarantined set deleted) and resumed; the resumed fig3 table must be
#      byte-identical to an uninterrupted run's.
#   5b. Adversarial leg (3c): the attack/defence sweep runs under
#      ASan/UBSan with attacked accuracy <= clean accuracy asserted per
#      cell, and the Release-tree report must be byte-identical at 1 and 4
#      threads.
#   6. Inference legs (1c2-1c3): the scalar-vs-flat inference benchmark
#      must report bit-identical scores in every grid cell, and the fig3
#      table must be byte-identical whichever backend scores it.
#   7. Static-analysis legs (1d-1f): hmd_srclint must report zero
#      unsuppressed determinism violations over the tree; clang-tidy and a
#      clang -Wthread-safety build run when those tools are installed and
#      skip loudly when not (the default container is gcc-only).
#   8. Serving leg (5): bench/serve --quick runs under TSan (the
#      controller/worker/collector pipeline is the most lock-dense code in
#      the tree), then the Release tree proves the determinism contract —
#      1-thread and 4-thread verdict streams byte-identical, per-run
#      counters JSON-identical, and batched scoring at least as fast as
#      unbatched.
#   9. Drift leg (6): bench/drift --quick runs the drift-aware refresh
#      pipeline under ASan/UBSan (harvest, background retrain, hot-swap)
#      with the detection/recovery assertions checked from the JSON; the
#      Release tree then proves the hot-swap determinism contract (1- and
#      4-thread adaptive verdict streams byte-identical) and that a
#      checkpointed retrain killed mid-capture resumes to a byte-identical
#      verdict stream.
#
# Each build uses its own tree; pass -j via CMAKE_BUILD_PARALLEL_LEVEL
# or JOBS (default: all cores).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "=== [1/4] Release + HMD_WARNINGS_AS_ERRORS=ON ==="
cmake -B build-ci-release -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DHMD_WARNINGS_AS_ERRORS=ON
cmake --build build-ci-release -j "${JOBS}"
(cd build-ci-release && ctest --output-on-failure -j "${JOBS}")

echo "=== [1b] hmd_lint: analyzers over the experiment grid (quick) ==="
# Serving budgets ride along: a small overloaded fleet must keep its e2e
# p99 and shed rate under (generous) limits, or the lint exits non-zero.
# Drift budgets likewise: a fleet with a mid-run novel-family campaign must
# trigger, refresh, and recover within the lag/recovery budgets.
./build-ci-release/tools/hmd_lint --quick --max-train-ms 5000 \
  --max-p99-us 500000 --max-shed-rate 0.5 \
  --max-drift-lag 64 --min-refresh-recovery 0.5

echo "=== [1c] micro_ml: training benchmark, legacy vs columnar (quick) ==="
(cd build-ci-release && ./bench/micro_ml --quick --reps 1)
# The benchmark exits non-zero if the two dataset paths disagree; also
# require a well-formed report with the speedup field present.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("build-ci-release/BENCH_train.json") as f:
    report = json.load(f)
assert report["bench"] == "micro_ml", report
assert report["all_scores_match"] is True, "legacy/columnar scores diverge"
assert len(report["cells"]) == 24, f"expected 24 cells, got {len(report['cells'])}"
assert report["tree_ensemble_speedup"] > 0, report["tree_ensemble_speedup"]
print(f"BENCH_train.json OK: tree-ensemble speedup "
      f"{report['tree_ensemble_speedup']:.2f}x")
EOF
else
  grep -q '"bench": "micro_ml"' build-ci-release/BENCH_train.json
  grep -q '"all_scores_match": true' build-ci-release/BENCH_train.json
  grep -q '"tree_ensemble_speedup"' build-ci-release/BENCH_train.json
  echo "BENCH_train.json OK (grep fallback)"
fi

echo "=== [1c2] micro_infer: inference benchmark, scalar vs flat (quick) ==="
(cd build-ci-release && ./bench/micro_infer --quick --reps 1)
# The benchmark exits non-zero if any backend pair disagrees; also require
# a well-formed report where every cell's scores matched bitwise.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("build-ci-release/BENCH_infer.json") as f:
    report = json.load(f)
assert report["bench"] == "micro_infer", report
assert report["all_scores_match"] is True, "scalar/flat scores diverge"
assert len(report["cells"]) == 24, f"expected 24 cells, got {len(report['cells'])}"
assert all(c["score_match"] for c in report["cells"]), report["cells"]
assert report["tree_ensemble_speedup"] > 0, report["tree_ensemble_speedup"]
print(f"BENCH_infer.json OK: tree-ensemble speedup "
      f"{report['tree_ensemble_speedup']:.2f}x")
EOF
else
  grep -q '"bench": "micro_infer"' build-ci-release/BENCH_infer.json
  grep -q '"all_scores_match": true' build-ci-release/BENCH_infer.json
  grep -q '"tree_ensemble_speedup"' build-ci-release/BENCH_infer.json
  echo "BENCH_infer.json OK (grep fallback)"
fi

echo "=== [1c3] fig3 table must be byte-identical across inference backends ==="
# The paper tables are produced through the process-wide backend selection;
# the flat engine's bit-identity contract means the artifact bytes cannot
# depend on which backend scored them.
(
  cd build-ci-release
  rm -f fig3-backend-scalar.txt fig3-backend-flat.txt
  ./bench/fig3_accuracy --quick --backend scalar > fig3-backend-scalar.txt
  ./bench/fig3_accuracy --quick --backend flat > fig3-backend-flat.txt
  diff fig3-backend-scalar.txt fig3-backend-flat.txt
  echo "fig3 OK: scalar and flat backends produce byte-identical tables"
)

echo "=== [1d] hmd_srclint: determinism/concurrency source lint ==="
# The lint must exit 0 (the tree is clean modulo inline allows) and the
# report must be well-formed: zero unsuppressed violations, a non-empty
# file set, and the full rule table present.
./build-ci-release/tools/hmd_srclint --root . \
  --out build-ci-release/LINT_src.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("build-ci-release/LINT_src.json") as f:
    report = json.load(f)
assert report["tool"] == "hmd_srclint", report
assert report["unsuppressed_total"] == 0, report["violations"]
assert report["files_scanned"] > 0, "lint scanned no files"
assert len(report["rules"]) == 5, f"expected 5 rules, got {len(report['rules'])}"
assert report["errors"] == [], report["errors"]
print(f"LINT_src.json OK: {report['files_scanned']} files clean "
      f"under {len(report['rules'])} rules")
EOF
else
  grep -q '"tool": "hmd_srclint"' build-ci-release/LINT_src.json
  grep -q '"unsuppressed_total": 0' build-ci-release/LINT_src.json
  echo "LINT_src.json OK (grep fallback)"
fi

echo "=== [1e] clang-tidy (skipped unless clang-tidy is installed) ==="
# bugprone-* and clang-analyzer-* hits are errors (.clang-tidy
# WarningsAsErrors); the compilation database comes from the Release tree,
# which always exports it.
if command -v clang-tidy >/dev/null 2>&1 && command -v python3 >/dev/null 2>&1
then
  python3 - <<'EOF'
import json, subprocess, sys
with open("build-ci-release/compile_commands.json") as f:
    entries = json.load(f)
files = sorted({e["file"] for e in entries
                if "/_deps/" not in e["file"] and "/tsa_checks/" not in e["file"]})
failed = []
for path in files:
    proc = subprocess.run(
        ["clang-tidy", "-p", "build-ci-release", "--quiet", path],
        capture_output=True, text=True)
    if proc.returncode != 0:
        failed.append(path)
        sys.stderr.write(proc.stdout + proc.stderr)
print(f"clang-tidy: {len(files)} TUs, {len(failed)} failed")
sys.exit(1 if failed else 0)
EOF
else
  echo "clang-tidy or python3 not installed; skipping tidy leg"
fi

echo "=== [1f] clang thread-safety analysis (skipped unless clang++ exists) ==="
# Rebuilds the library targets under clang with -Wthread-safety promoted to
# an error (cmake/ThreadSafety.cmake), plus the configure-time probes that
# prove the annotations reject unlocked guarded access.
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-ci-tsa -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DHMD_WARNINGS_AS_ERRORS=ON
  cmake --build build-ci-tsa -j "${JOBS}"
  (cd build-ci-tsa && ctest --output-on-failure -j "${JOBS}")
else
  echo "clang++ not installed; skipping thread-safety leg"
fi

echo "=== [2/4] Debug + HMD_SANITIZE=address;undefined ==="
cmake -B build-ci-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DHMD_SANITIZE="address;undefined"
cmake --build build-ci-asan -j "${JOBS}"
(cd build-ci-asan && \
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --output-on-failure -j "${JOBS}")

echo "=== [3/4] fault injection under ASan/UBSan: heavy sweep + lint budgets ==="
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ./build-ci-asan/bench/ablation_faults --quick --faults heavy
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ./build-ci-asan/tools/hmd_lint --quick --faults light

echo "=== [3b] checkpoint/resume: killed campaign must resume byte-identically ==="
# An uninterrupted heavy-fault run is the reference; a checkpointed run of
# the same campaign is then "killed" (one completed app's checkpoint plus
# every quarantined app's checkpoint deleted) and resumed. The resumed
# fig3 table must be byte-identical to the uninterrupted one, and the
# resume banner must show reused apps.
CKPT_DIR="ckpt-ci"
(
  cd build-ci-release
  rm -rf "${CKPT_DIR}" fig3-uninterrupted.txt fig3-resumed.txt resume-log.txt
  ./bench/fig3_accuracy --quick --faults heavy --threads 2 \
    > fig3-uninterrupted.txt
  ./bench/fig3_accuracy --quick --faults heavy --threads 2 \
    --checkpoint "${CKPT_DIR}" > /dev/null
  rm -f "${CKPT_DIR}/app_00000.ckpt"
  grep -l '^quarantined 1$' "${CKPT_DIR}"/app_*.ckpt | xargs -r rm -f
  ./bench/fig3_accuracy --quick --faults heavy --threads 2 \
    --checkpoint "${CKPT_DIR}" --resume \
    > fig3-resumed.txt 2> resume-log.txt
  grep -q 'apps reused' resume-log.txt
  diff fig3-uninterrupted.txt fig3-resumed.txt
  echo "checkpoint/resume OK: resumed fig3 table is byte-identical"
)

echo "=== [3c] adversarial robustness: attack sweep under ASan/UBSan ==="
# The evasion search, retraining, and margin-gate paths run hot loops the
# clean suite only covers at unit scale; the quick sweep must finish with
# zero sanitizer reports and a well-formed report in which no cell's
# attacked accuracy exceeds its clean accuracy (the search only ever
# accepts score decreases, so a regression here is a determinism or
# projection bug, not noise).
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ./build-ci-asan/bench/ablation_adversarial --quick \
    --out build-ci-asan/BENCH_adversarial.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("build-ci-asan/BENCH_adversarial.json") as f:
    report = json.load(f)
assert report["bench"] == "ablation_adversarial", report
assert len(report["budgets"]) == 3, f"expected 3 budgets, got {len(report['budgets'])}"
cells = 0
for budget in report["budgets"]:
    for cell in budget["cells"]:
        cells += 1
        assert cell["attacked_accuracy"] <= cell["clean_accuracy"] + 1e-12, (
            budget["max_rel_delta"], cell)
        assert 0.0 <= cell["evasion_rate"] <= 1.0, cell
assert cells > 0, "report has no cells"
print(f"BENCH_adversarial.json OK: attacked <= clean in all {cells} cells")
EOF
else
  grep -q '"bench": "ablation_adversarial"' build-ci-asan/BENCH_adversarial.json
  echo "BENCH_adversarial.json OK (grep fallback)"
fi
# Determinism of the full sweep (Release tree): the same seed must produce
# byte-identical reports at 1 and 4 threads.
(
  cd build-ci-release
  rm -f adv-t1.json adv-t4.json
  ./bench/ablation_adversarial --quick --threads 1 --out adv-t1.json \
    > /dev/null 2>&1
  ./bench/ablation_adversarial --quick --threads 4 --out adv-t4.json \
    > /dev/null 2>&1
  diff adv-t1.json adv-t4.json
  echo "ablation_adversarial OK: 1-thread and 4-thread reports byte-identical"
)

echo "=== [4/4] Debug + HMD_SANITIZE=thread, HMD_THREADS=4 ==="
cmake -B build-ci-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DHMD_SANITIZE=thread
cmake --build build-ci-tsan -j "${JOBS}"
(cd build-ci-tsan && \
  HMD_THREADS=4 \
  TSAN_OPTIONS="halt_on_error=1" \
  ctest --output-on-failure -j "${JOBS}")

echo "=== [5] serving pipeline: TSan quick run + determinism contract ==="
# The sharded controller/worker/collector pipeline under TSan: every lock,
# queue hand-off, and hedge-store access race-checked on a small fleet.
TSAN_OPTIONS="halt_on_error=1" \
  ./build-ci-tsan/bench/serve --quick --hosts 96 --duration-ms 300 \
    --threads 4 --out build-ci-tsan/BENCH_serve.json
# Determinism contract (Release tree): verdict streams byte-identical and
# counters JSON-identical across worker counts, under a fixed seed.
(
  cd build-ci-release
  rm -f serve-t1.json serve-t4.json serve-verdicts-t1.txt serve-verdicts-t4.txt
  ./bench/serve --quick --threads 1 \
    --out serve-t1.json --verdicts serve-verdicts-t1.txt
  ./bench/serve --quick --threads 4 \
    --out serve-t4.json --verdicts serve-verdicts-t4.txt
  diff serve-verdicts-t1.txt serve-verdicts-t4.txt
  echo "serve OK: 1-thread and 4-thread verdict streams byte-identical"
)
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("build-ci-release/serve-t1.json") as f:
    t1 = json.load(f)
with open("build-ci-release/serve-t4.json") as f:
    t4 = json.load(f)
assert t1["bench"] == "serve", t1
assert t1["verdicts_match"] is True, "batched/unbatched verdicts diverge"
assert t1["batched_speedup"] >= 1.0, t1["batched_speedup"]
for run in ("batched", "unbatched", "overloaded"):
    assert t1[run]["counters"] == t4[run]["counters"], (
        run, t1[run]["counters"], t4[run]["counters"])
over = t1["overloaded"]["counters"]
assert over["shed"] > 0, "overloaded run shed nothing"
assert over["admitted"] + over["shed"] == over["emitted"], over
print(f"BENCH serve OK: batched speedup {t1['batched_speedup']:.2f}x, "
      f"counters identical across thread counts")
EOF
else
  grep -q '"bench": "serve"' build-ci-release/serve-t1.json
  grep -q '"verdicts_match": true' build-ci-release/serve-t1.json
  echo "serve JSON OK (grep fallback)"
fi

echo "=== [6] drift refresh: ASan quick run + hot-swap determinism + resume ==="
# The drift-aware refresh path (score-window bookkeeping, harvest,
# background retrain thread, epoch'd hot-swap) under ASan/UBSan on a small
# fleet with a mid-run campaign; the run itself exits non-zero unless the
# detector fired and the swap landed.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ./build-ci-asan/bench/drift --quick --out build-ci-asan/BENCH_drift.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("build-ci-asan/BENCH_drift.json") as f:
    report = json.load(f)
assert report["bench"] == "drift", report
det, ref, acc = report["detection"], report["refresh"], report["accuracy"]
assert det["triggers"] > 0, "drift detector never fired"
assert ref["swapped"] is True, "model hot-swap never happened"
assert 0 < det["detection_lag_ticks"] <= 64, det
assert ref["window_rows"] > 0, ref
assert acc["recovery_fraction"] >= 0.5, acc
assert acc["post_refresh"] > acc["frozen_tail"], acc
print(f"BENCH_drift.json OK: lag {det['detection_lag_ticks']} ticks, "
      f"recovery {acc['recovery_fraction']:.2f}")
EOF
else
  grep -q '"bench": "drift"' build-ci-asan/BENCH_drift.json
  grep -q '"swapped": true' build-ci-asan/BENCH_drift.json
  echo "BENCH_drift.json OK (grep fallback)"
fi
# Hot-swap determinism contract (Release tree): the adaptive verdict
# stream — including every verdict scored by the refreshed model after the
# swap — must be byte-identical at 1 and 4 worker threads.
(
  cd build-ci-release
  rm -rf drift-ckpt drift-t1.json drift-t4.json drift-verdicts-t1.txt \
    drift-verdicts-t4.txt drift-verdicts-ckpt.txt drift-verdicts-resumed.txt
  ./bench/drift --quick --threads 1 --out drift-t1.json \
    --verdicts drift-verdicts-t1.txt
  ./bench/drift --quick --threads 4 --out drift-t4.json \
    --verdicts drift-verdicts-t4.txt
  diff drift-verdicts-t1.txt drift-verdicts-t4.txt
  echo "drift OK: 1- and 4-thread adaptive verdict streams byte-identical"
  # Kill-and-resume through the retrain: a checkpointed run re-captures the
  # base split under a checkpoint store; "killing" it (deleting one app's
  # checkpoint) and rerunning must auto-resume to the same retrained model,
  # i.e. a verdict stream byte-identical to both the first checkpointed run
  # and the uncheckpointed cached-split run.
  ./bench/drift --quick --threads 4 --checkpoint-dir drift-ckpt \
    --out drift-ckpt.json --verdicts drift-verdicts-ckpt.txt
  rm -f drift-ckpt/app_00000.ckpt
  ./bench/drift --quick --threads 4 --checkpoint-dir drift-ckpt \
    --out drift-resumed.json --verdicts drift-verdicts-resumed.txt
  diff drift-verdicts-ckpt.txt drift-verdicts-resumed.txt
  diff drift-verdicts-t4.txt drift-verdicts-ckpt.txt
  echo "drift OK: killed checkpointed retrain resumed byte-identically"
)

echo "=== CI OK ==="

#!/usr/bin/env bash
# CI entry point: the tier-1 verification run twice.
#
#   1. Release, warnings-as-errors — the production configuration must
#      compile warning-clean under -Wall -Wextra -Wshadow -Wconversion
#      -Wdouble-promotion -Wold-style-cast.
#   2. Debug, AddressSanitizer + UndefinedBehaviorSanitizer — the full
#      ctest suite must pass with zero sanitizer reports. Recovery is
#      disabled at compile time (-fno-sanitize-recover=all) and
#      halt_on_error is set here, so any report fails the suite.
#
# Both builds use their own tree; pass -j via CMAKE_BUILD_PARALLEL_LEVEL
# or JOBS (default: all cores).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "=== [1/2] Release + HMD_WARNINGS_AS_ERRORS=ON ==="
cmake -B build-ci-release -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DHMD_WARNINGS_AS_ERRORS=ON
cmake --build build-ci-release -j "${JOBS}"
(cd build-ci-release && ctest --output-on-failure -j "${JOBS}")

echo "=== [1b] hmd_lint: analyzers over the experiment grid (quick) ==="
./build-ci-release/tools/hmd_lint --quick

echo "=== [2/2] Debug + HMD_SANITIZE=address;undefined ==="
cmake -B build-ci-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DHMD_SANITIZE="address;undefined"
cmake --build build-ci-asan -j "${JOBS}"
(cd build-ci-asan && \
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --output-on-failure -j "${JOBS}")

echo "=== CI OK ==="

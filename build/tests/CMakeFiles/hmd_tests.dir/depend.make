# Empty dependencies file for hmd_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arff_family.cpp" "tests/CMakeFiles/hmd_tests.dir/test_arff_family.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_arff_family.cpp.o.d"
  "/root/repo/tests/test_classifiers.cpp" "tests/CMakeFiles/hmd_tests.dir/test_classifiers.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_classifiers.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/hmd_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/hmd_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_deployment.cpp" "tests/CMakeFiles/hmd_tests.dir/test_deployment.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_deployment.cpp.o.d"
  "/root/repo/tests/test_discretize.cpp" "tests/CMakeFiles/hmd_tests.dir/test_discretize.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_discretize.cpp.o.d"
  "/root/repo/tests/test_ensembles.cpp" "tests/CMakeFiles/hmd_tests.dir/test_ensembles.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_ensembles.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/hmd_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_feature_selection.cpp" "tests/CMakeFiles/hmd_tests.dir/test_feature_selection.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_feature_selection.cpp.o.d"
  "/root/repo/tests/test_hls_codegen.cpp" "tests/CMakeFiles/hmd_tests.dir/test_hls_codegen.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_hls_codegen.cpp.o.d"
  "/root/repo/tests/test_hpc.cpp" "tests/CMakeFiles/hmd_tests.dir/test_hpc.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_hpc.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/hmd_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/hmd_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_microarch_variants.cpp" "tests/CMakeFiles/hmd_tests.dir/test_microarch_variants.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_microarch_variants.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hmd_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/hmd_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/hmd_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_trees_rules.cpp" "tests/CMakeFiles/hmd_tests.dir/test_trees_rules.cpp.o" "gcc" "tests/CMakeFiles/hmd_tests.dir/test_trees_rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hmd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/hmd_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hmd_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/hmd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

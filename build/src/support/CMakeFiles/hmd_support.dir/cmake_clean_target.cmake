file(REMOVE_RECURSE
  "libhmd_support.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hmd_support.dir/stats.cpp.o"
  "CMakeFiles/hmd_support.dir/stats.cpp.o.d"
  "CMakeFiles/hmd_support.dir/table.cpp.o"
  "CMakeFiles/hmd_support.dir/table.cpp.o.d"
  "libhmd_support.a"
  "libhmd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

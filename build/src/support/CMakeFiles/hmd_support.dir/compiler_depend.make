# Empty compiler generated dependencies file for hmd_support.
# This may be replaced when dependencies are built.

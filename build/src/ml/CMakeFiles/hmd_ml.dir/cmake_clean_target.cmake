file(REMOVE_RECURSE
  "libhmd_ml.a"
)

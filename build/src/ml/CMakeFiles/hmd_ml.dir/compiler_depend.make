# Empty compiler generated dependencies file for hmd_ml.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adaboost.cpp" "src/ml/CMakeFiles/hmd_ml.dir/adaboost.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/adaboost.cpp.o.d"
  "/root/repo/src/ml/arff.cpp" "src/ml/CMakeFiles/hmd_ml.dir/arff.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/arff.cpp.o.d"
  "/root/repo/src/ml/bagging.cpp" "src/ml/CMakeFiles/hmd_ml.dir/bagging.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/bagging.cpp.o.d"
  "/root/repo/src/ml/bayesnet.cpp" "src/ml/CMakeFiles/hmd_ml.dir/bayesnet.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/bayesnet.cpp.o.d"
  "/root/repo/src/ml/calibration.cpp" "src/ml/CMakeFiles/hmd_ml.dir/calibration.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/calibration.cpp.o.d"
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/hmd_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/hmd_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/discretize.cpp" "src/ml/CMakeFiles/hmd_ml.dir/discretize.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/discretize.cpp.o.d"
  "/root/repo/src/ml/factory.cpp" "src/ml/CMakeFiles/hmd_ml.dir/factory.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/factory.cpp.o.d"
  "/root/repo/src/ml/feature_selection.cpp" "src/ml/CMakeFiles/hmd_ml.dir/feature_selection.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/feature_selection.cpp.o.d"
  "/root/repo/src/ml/j48.cpp" "src/ml/CMakeFiles/hmd_ml.dir/j48.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/j48.cpp.o.d"
  "/root/repo/src/ml/jrip.cpp" "src/ml/CMakeFiles/hmd_ml.dir/jrip.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/jrip.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/hmd_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/hmd_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/oner.cpp" "src/ml/CMakeFiles/hmd_ml.dir/oner.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/oner.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/hmd_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/reptree.cpp" "src/ml/CMakeFiles/hmd_ml.dir/reptree.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/reptree.cpp.o.d"
  "/root/repo/src/ml/sgd.cpp" "src/ml/CMakeFiles/hmd_ml.dir/sgd.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/sgd.cpp.o.d"
  "/root/repo/src/ml/smo.cpp" "src/ml/CMakeFiles/hmd_ml.dir/smo.cpp.o" "gcc" "src/ml/CMakeFiles/hmd_ml.dir/smo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

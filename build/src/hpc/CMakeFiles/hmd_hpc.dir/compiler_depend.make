# Empty compiler generated dependencies file for hmd_hpc.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpc/capture.cpp" "src/hpc/CMakeFiles/hmd_hpc.dir/capture.cpp.o" "gcc" "src/hpc/CMakeFiles/hmd_hpc.dir/capture.cpp.o.d"
  "/root/repo/src/hpc/container.cpp" "src/hpc/CMakeFiles/hmd_hpc.dir/container.cpp.o" "gcc" "src/hpc/CMakeFiles/hmd_hpc.dir/container.cpp.o.d"
  "/root/repo/src/hpc/pmu.cpp" "src/hpc/CMakeFiles/hmd_hpc.dir/pmu.cpp.o" "gcc" "src/hpc/CMakeFiles/hmd_hpc.dir/pmu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hmd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhmd_hpc.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hmd_hpc.dir/capture.cpp.o"
  "CMakeFiles/hmd_hpc.dir/capture.cpp.o.d"
  "CMakeFiles/hmd_hpc.dir/container.cpp.o"
  "CMakeFiles/hmd_hpc.dir/container.cpp.o.d"
  "CMakeFiles/hmd_hpc.dir/pmu.cpp.o"
  "CMakeFiles/hmd_hpc.dir/pmu.cpp.o.d"
  "libhmd_hpc.a"
  "libhmd_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmd_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hmd_hw.dir/hls_codegen.cpp.o"
  "CMakeFiles/hmd_hw.dir/hls_codegen.cpp.o.d"
  "CMakeFiles/hmd_hw.dir/resources.cpp.o"
  "CMakeFiles/hmd_hw.dir/resources.cpp.o.d"
  "libhmd_hw.a"
  "libhmd_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmd_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

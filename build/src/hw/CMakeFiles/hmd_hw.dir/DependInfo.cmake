
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/hls_codegen.cpp" "src/hw/CMakeFiles/hmd_hw.dir/hls_codegen.cpp.o" "gcc" "src/hw/CMakeFiles/hmd_hw.dir/hls_codegen.cpp.o.d"
  "/root/repo/src/hw/resources.cpp" "src/hw/CMakeFiles/hmd_hw.dir/resources.cpp.o" "gcc" "src/hw/CMakeFiles/hmd_hw.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/hmd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

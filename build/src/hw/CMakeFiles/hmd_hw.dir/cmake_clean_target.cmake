file(REMOVE_RECURSE
  "libhmd_hw.a"
)

# Empty dependencies file for hmd_hw.
# This may be replaced when dependencies are built.

# Empty dependencies file for hmd_sim.
# This may be replaced when dependencies are built.

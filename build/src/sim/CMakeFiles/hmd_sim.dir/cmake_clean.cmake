file(REMOVE_RECURSE
  "CMakeFiles/hmd_sim.dir/branch_predictor.cpp.o"
  "CMakeFiles/hmd_sim.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/hmd_sim.dir/cache.cpp.o"
  "CMakeFiles/hmd_sim.dir/cache.cpp.o.d"
  "CMakeFiles/hmd_sim.dir/events.cpp.o"
  "CMakeFiles/hmd_sim.dir/events.cpp.o.d"
  "CMakeFiles/hmd_sim.dir/machine.cpp.o"
  "CMakeFiles/hmd_sim.dir/machine.cpp.o.d"
  "CMakeFiles/hmd_sim.dir/workloads.cpp.o"
  "CMakeFiles/hmd_sim.dir/workloads.cpp.o.d"
  "libhmd_sim.a"
  "libhmd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

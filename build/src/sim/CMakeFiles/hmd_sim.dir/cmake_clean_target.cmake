file(REMOVE_RECURSE
  "libhmd_sim.a"
)

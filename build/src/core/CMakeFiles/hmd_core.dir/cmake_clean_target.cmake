file(REMOVE_RECURSE
  "libhmd_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hmd_core.dir/experiment.cpp.o"
  "CMakeFiles/hmd_core.dir/experiment.cpp.o.d"
  "CMakeFiles/hmd_core.dir/family.cpp.o"
  "CMakeFiles/hmd_core.dir/family.cpp.o.d"
  "CMakeFiles/hmd_core.dir/online.cpp.o"
  "CMakeFiles/hmd_core.dir/online.cpp.o.d"
  "libhmd_core.a"
  "libhmd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

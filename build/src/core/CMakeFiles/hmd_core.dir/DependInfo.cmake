
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/hmd_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/hmd_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/family.cpp" "src/core/CMakeFiles/hmd_core.dir/family.cpp.o" "gcc" "src/core/CMakeFiles/hmd_core.dir/family.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/hmd_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/hmd_core.dir/online.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/hmd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/hmd_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hmd_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

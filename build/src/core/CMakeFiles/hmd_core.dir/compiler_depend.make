# Empty compiler generated dependencies file for hmd_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/counter_budget_explorer.dir/counter_budget_explorer.cpp.o"
  "CMakeFiles/counter_budget_explorer.dir/counter_budget_explorer.cpp.o.d"
  "counter_budget_explorer"
  "counter_budget_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_budget_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for counter_budget_explorer.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_performance.cpp" "bench/CMakeFiles/fig5_performance.dir/fig5_performance.cpp.o" "gcc" "bench/CMakeFiles/fig5_performance.dir/fig5_performance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hmd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/hmd_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hmd_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/hmd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

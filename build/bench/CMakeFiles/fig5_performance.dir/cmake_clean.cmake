file(REMOVE_RECURSE
  "CMakeFiles/fig5_performance.dir/fig5_performance.cpp.o"
  "CMakeFiles/fig5_performance.dir/fig5_performance.cpp.o.d"
  "fig5_performance"
  "fig5_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

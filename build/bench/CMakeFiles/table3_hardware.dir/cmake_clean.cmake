file(REMOVE_RECURSE
  "CMakeFiles/table3_hardware.dir/table3_hardware.cpp.o"
  "CMakeFiles/table3_hardware.dir/table3_hardware.cpp.o.d"
  "table3_hardware"
  "table3_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig4_roc.dir/fig4_roc.cpp.o"
  "CMakeFiles/fig4_roc.dir/fig4_roc.cpp.o.d"
  "fig4_roc"
  "fig4_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

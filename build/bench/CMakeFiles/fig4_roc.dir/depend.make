# Empty dependencies file for fig4_roc.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_families.
# This may be replaced when dependencies are built.

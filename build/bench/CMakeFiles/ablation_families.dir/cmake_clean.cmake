file(REMOVE_RECURSE
  "CMakeFiles/ablation_families.dir/ablation_families.cpp.o"
  "CMakeFiles/ablation_families.dir/ablation_families.cpp.o.d"
  "ablation_families"
  "ablation_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table2_auc.
# This may be replaced when dependencies are built.

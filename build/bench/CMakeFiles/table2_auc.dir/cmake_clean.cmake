file(REMOVE_RECURSE
  "CMakeFiles/table2_auc.dir/table2_auc.cpp.o"
  "CMakeFiles/table2_auc.dir/table2_auc.cpp.o.d"
  "table2_auc"
  "table2_auc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_auc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_ensemble.dir/ablation_ensemble.cpp.o"
  "CMakeFiles/ablation_ensemble.dir/ablation_ensemble.cpp.o.d"
  "ablation_ensemble"
  "ablation_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

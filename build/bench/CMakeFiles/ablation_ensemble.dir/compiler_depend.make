# Empty compiler generated dependencies file for ablation_ensemble.
# This may be replaced when dependencies are built.

// Google-benchmark microbenchmarks: training and single-sample inference
// throughput of every classifier family, on a captured 4-HPC dataset.
//
// Inference latency here is the *software* baseline the paper contrasts
// with hardware implementation ("software implementation ... is slow in the
// range of tens of milliseconds"); compare with bench/table3_hardware.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/hmd.h"

namespace {

using namespace hmd;

/// One small shared capture for all registered benchmarks.
const core::ExperimentContext& context() {
  static const core::ExperimentContext ctx = [] {
    core::ExperimentConfig cfg;
    cfg.corpus.benign_per_template = 1;
    cfg.corpus.malware_per_template = 1;
    cfg.corpus.intervals_per_app = 10;
    return core::prepare_experiment(cfg);
  }();
  return ctx;
}

const ml::Dataset& train4() {
  static const ml::Dataset data =
      context().split.train.select_features(context().top_features(4));
  return data;
}

void bm_train(benchmark::State& state, ml::ClassifierKind kind,
              ml::EnsembleKind ens) {
  const ml::Dataset& data = train4();
  for (auto _ : state) {
    auto clf = ml::make_detector(kind, ens, 7);
    clf->train(data);
    benchmark::DoNotOptimize(clf);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.num_rows()));
}

void bm_predict(benchmark::State& state, ml::ClassifierKind kind,
                ml::EnsembleKind ens) {
  const ml::Dataset& data = train4();
  auto clf = ml::make_detector(kind, ens, 7);
  clf->train(data);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf->predict_proba(data.row(i)));
    i = (i + 1) % data.num_rows();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_capture_interval(benchmark::State& state) {
  const auto app = sim::make_benign(0, 0, 2018, /*intervals=*/1u << 30);
  sim::Machine machine;
  machine.start_run(app, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.next_interval());
  }
}

#define HMD_REGISTER(kind, label)                                          \
  BENCHMARK_CAPTURE(bm_train, label##_general, ml::ClassifierKind::kind,   \
                    ml::EnsembleKind::kGeneral)                            \
      ->Unit(benchmark::kMillisecond);                                     \
  BENCHMARK_CAPTURE(bm_train, label##_boosted, ml::ClassifierKind::kind,   \
                    ml::EnsembleKind::kAdaBoost)                           \
      ->Unit(benchmark::kMillisecond);                                     \
  BENCHMARK_CAPTURE(bm_predict, label##_general, ml::ClassifierKind::kind, \
                    ml::EnsembleKind::kGeneral);                           \
  BENCHMARK_CAPTURE(bm_predict, label##_boosted, ml::ClassifierKind::kind, \
                    ml::EnsembleKind::kAdaBoost);

HMD_REGISTER(kOneR, oner)
HMD_REGISTER(kBayesNet, bayesnet)
HMD_REGISTER(kJ48, j48)
HMD_REGISTER(kRepTree, reptree)
HMD_REGISTER(kJRip, jrip)
HMD_REGISTER(kSgd, sgd)
HMD_REGISTER(kSmo, smo)
HMD_REGISTER(kMlp, mlp)

BENCHMARK(bm_capture_interval)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

// Training/inference micro-benchmark over the full classifier × ensemble
// grid, A/B-comparing the columnar dataset core against the legacy
// row-copy path (HMD_LEGACY_DATASET=1 semantics) in one process.
//
// For every cell the benchmark trains under both dataset modes, checks the
// resulting models score the test split bit-identically, and records the
// training wall-clock of each mode plus the columnar-mode inference
// latency. Results land in BENCH_train.json; the headline number is
// `tree_ensemble_speedup`, the aggregate legacy/columnar training-time
// ratio over the presort-accelerated tree/rule ensembles
// ({J48, REPTree, JRip} × {AdaBoost, Bagging}).
//
// Flags (beyond the shared --quick/--seed/--threads set):
//   --reps N   timing repetitions per cell, best-of (default 3; 1 in --quick)
//   --hpcs N   feature-projection width to train on (default 8)
//   --out P    JSON output path (default BENCH_train.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hmd.h"

namespace {

using namespace hmd;

struct Cell {
  ml::ClassifierKind kind;
  ml::EnsembleKind ensemble;
  double legacy_ms = 0.0;
  double columnar_ms = 0.0;
  double predict_us = 0.0;  ///< columnar-mode per-sample inference latency
  bool score_match = true;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Train one detector under the current dataset mode; returns best-of-reps
/// wall-clock ms and leaves the last trained model's test-score sum in
/// `score_out` (a bit-exact fingerprint of the learned model).
double time_train(const core::ExperimentContext& ctx, const ml::Split& split,
                  ml::ClassifierKind kind, ml::EnsembleKind ensemble,
                  std::size_t reps, double* score_out, double* predict_us) {
  double best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto detector = ml::make_detector(kind, ensemble, ctx.config.model_seed);
    const double t0 = now_ms();
    detector->train(split.train);
    const double ms = now_ms() - t0;
    if (rep == 0 || ms < best) best = ms;
    if (rep + 1 == reps) {
      double score = 0.0;
      const double p0 = now_ms();
      for (std::size_t i = 0; i < split.test.num_rows(); ++i)
        score += detector->predict_proba(split.test.row(i));
      const double pms = now_ms() - p0;
      *score_out = score;
      if (predict_us != nullptr && split.test.num_rows() > 0)
        *predict_us =
            1000.0 * pms / static_cast<double>(split.test.num_rows());
    }
  }
  return best;
}

bool tree_ensemble_cell(const Cell& c) {
  const bool tree = c.kind == ml::ClassifierKind::kJ48 ||
                    c.kind == ml::ClassifierKind::kRepTree ||
                    c.kind == ml::ClassifierKind::kJRip;
  const bool ens = c.ensemble == ml::EnsembleKind::kAdaBoost ||
                   c.ensemble == ml::EnsembleKind::kBagging;
  return tree && ens;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig cfg = benchutil::config_from_args(argc, argv);
  std::size_t reps = 0;
  std::size_t hpcs = 8;
  const char* out_path = "BENCH_train.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::strtoull(argv[i + 1], nullptr, 10);
    if (std::strcmp(argv[i], "--hpcs") == 0 && i + 1 < argc)
      hpcs = std::strtoull(argv[i + 1], nullptr, 10);
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[i + 1];
  }
  if (reps == 0) reps = quick ? 1 : 3;
  if (hpcs == 0) hpcs = 8;

  long long capture_ms = 0;
  const core::ExperimentContext ctx =
      benchutil::prepare(cfg, "micro_ml", &capture_ms);
  const ml::Split& split = ctx.projected_split(hpcs);

  const ml::DatasetMode initial_mode = ml::dataset_mode();
  std::vector<Cell> cells;
  bool all_match = true;
  for (ml::ClassifierKind kind : ml::all_classifier_kinds()) {
    for (ml::EnsembleKind ensemble : ml::all_ensemble_kinds()) {
      Cell cell{kind, ensemble};
      double legacy_score = 0.0, columnar_score = 0.0;
      ml::set_dataset_mode(ml::DatasetMode::kLegacy);
      cell.legacy_ms = time_train(ctx, split, kind, ensemble, reps,
                                  &legacy_score, nullptr);
      ml::set_dataset_mode(ml::DatasetMode::kColumnar);
      cell.columnar_ms = time_train(ctx, split, kind, ensemble, reps,
                                    &columnar_score, &cell.predict_us);
      cell.score_match = legacy_score == columnar_score;
      all_match = all_match && cell.score_match;
      std::fprintf(stderr,
                   "[micro_ml] %-8s %-8s legacy %8.2f ms  columnar %8.2f ms "
                   " (%.2fx)%s\n",
                   std::string(ml::classifier_kind_name(kind)).c_str(),
                   std::string(ml::ensemble_kind_name(ensemble)).c_str(),
                   cell.legacy_ms, cell.columnar_ms,
                   cell.columnar_ms > 0.0 ? cell.legacy_ms / cell.columnar_ms
                                          : 0.0,
                   cell.score_match ? "" : "  SCORE MISMATCH");
      cells.push_back(cell);
    }
  }
  ml::set_dataset_mode(initial_mode);

  double tree_legacy = 0.0, tree_columnar = 0.0;
  for (const Cell& c : cells) {
    if (!tree_ensemble_cell(c)) continue;
    tree_legacy += c.legacy_ms;
    tree_columnar += c.columnar_ms;
  }
  const double tree_speedup =
      tree_columnar > 0.0 ? tree_legacy / tree_columnar : 0.0;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[micro_ml] cannot write %s\n", out_path);
    return 1;
  }
  const double rows = static_cast<double>(split.train.num_rows());
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_ml\",\n"
               "  \"capture_ms\": %lld,\n"
               "  \"hpcs\": %zu,\n"
               "  \"reps\": %zu,\n"
               "  \"train_rows\": %zu,\n"
               "  \"test_rows\": %zu,\n"
               "  \"tree_ensemble_speedup\": %.3f,\n"
               "  \"all_scores_match\": %s,\n"
               "  \"cells\": [\n",
               capture_ms, hpcs, reps, split.train.num_rows(),
               split.test.num_rows(), tree_speedup,
               all_match ? "true" : "false");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"classifier\": \"%s\", \"ensemble\": \"%s\", "
        "\"legacy_train_ms\": %.3f, \"columnar_train_ms\": %.3f, "
        "\"speedup\": %.3f, \"rows_per_sec\": %.1f, "
        "\"predict_us_per_sample\": %.3f, \"score_match\": %s}%s\n",
        std::string(ml::classifier_kind_name(c.kind)).c_str(),
        std::string(ml::ensemble_kind_name(c.ensemble)).c_str(),
        c.legacy_ms, c.columnar_ms,
        c.columnar_ms > 0.0 ? c.legacy_ms / c.columnar_ms : 0.0,
        c.columnar_ms > 0.0 ? rows / (c.columnar_ms / 1000.0) : 0.0,
        c.predict_us, c.score_match ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr,
               "[micro_ml] wrote %s (%zu cells, tree-ensemble training "
               "speedup %.2fx, scores %s)\n",
               out_path, cells.size(), tree_speedup,
               all_match ? "bit-identical" : "MISMATCHED");
  return all_match ? 0 : 1;
}

// Reproduces paper Figure 4: ROC graphs.
//   (a) 4HPC-Bagging detectors for BayesNet, J48, JRip, REPTree;
//   (b) AdaBoost effectiveness when dropping from 8 to 2 HPCs:
//       8HPC-General vs 2HPC-Boosted for JRip and OneR.
// Each curve is printed as a downsampled FPR/TPR series (CSV) plus its AUC,
// so the figure can be re-plotted directly from this output. All eight
// detectors are trained once, concurrently, via core::run_grid_full — the
// curves come from the same score pass as the metrics, never a retrain.
#include <iostream>

#include "bench_util.h"
#include "ml/metrics.h"
#include "support/table.h"

namespace {

using namespace hmd;

void print_curve(const std::string& label, const core::CellScores& cell) {
  const auto curve = ml::roc_curve(cell.scores, cell.labels);
  const double auc = ml::auc_from_curve(curve);
  std::cout << "\n# " << label << "  (AUC = " << TextTable::num(auc, 3)
            << ")\nfpr,tpr\n";
  // Downsample long curves to ~24 points; endpoints always kept.
  const std::size_t step = std::max<std::size_t>(1, curve.size() / 24);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (i % step != 0 && i + 1 != curve.size()) continue;
    std::cout << TextTable::num(curve[i].fpr, 4) << ','
              << TextTable::num(curve[i].tpr, 4) << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using EK = ml::EnsembleKind;
  using CK = ml::ClassifierKind;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "fig4");

  const core::GridCell cells[] = {
      {CK::kBayesNet, EK::kBagging, 4},  // Figure 4a
      {CK::kJ48, EK::kBagging, 4},
      {CK::kJRip, EK::kBagging, 4},
      {CK::kRepTree, EK::kBagging, 4},
      {CK::kJRip, EK::kGeneral, 8},      // Figure 4b
      {CK::kJRip, EK::kAdaBoost, 2},
      {CK::kOneR, EK::kGeneral, 8},
      {CK::kOneR, EK::kAdaBoost, 2},
  };
  const auto evals = core::run_grid_full(ctx, cells, cfg.threads);

  std::cout << "Figure 4a — ROC of 4HPC-Bagging detectors\n";
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string name(
        ml::classifier_kind_name(cells[i].classifier));
    print_curve("4HPC-Bagging-" + name, evals[i].scores);
  }

  std::cout << "\nFigure 4b — 8HPC-General vs 2HPC-Boosted\n";
  for (std::size_t i = 4; i < std::size(cells); i += 2) {
    const std::string name(
        ml::classifier_kind_name(cells[i].classifier));
    print_curve("8HPC-" + name, evals[i].scores);
    print_curve("2HPC-Boosted-" + name, evals[i + 1].scores);
  }
  std::cout << "\nPaper shape check: in (b) each classifier's 2HPC-Boosted "
               "curve should dominate (or match) its 8HPC general curve.\n";
  return 0;
}

// Reproduces paper Figure 4: ROC graphs.
//   (a) 4HPC-Bagging detectors for BayesNet, J48, JRip, REPTree;
//   (b) AdaBoost effectiveness when dropping from 8 to 2 HPCs:
//       8HPC-General vs 2HPC-Boosted for JRip and OneR.
// Each curve is printed as a downsampled FPR/TPR series (CSV) plus its AUC,
// so the figure can be re-plotted directly from this output.
#include <iostream>

#include "bench_util.h"
#include "ml/metrics.h"
#include "support/table.h"

namespace {

using namespace hmd;

void print_curve(const std::string& label, const core::CellScores& cell) {
  const auto curve = ml::roc_curve(cell.scores, cell.labels);
  const double auc = ml::auc_from_curve(curve);
  std::cout << "\n# " << label << "  (AUC = " << TextTable::num(auc, 3)
            << ")\nfpr,tpr\n";
  // Downsample long curves to ~24 points; endpoints always kept.
  const std::size_t step = std::max<std::size_t>(1, curve.size() / 24);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (i % step != 0 && i + 1 != curve.size()) continue;
    std::cout << TextTable::num(curve[i].fpr, 4) << ','
              << TextTable::num(curve[i].tpr, 4) << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using EK = ml::EnsembleKind;
  using CK = ml::ClassifierKind;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "fig4");

  std::cout << "Figure 4a — ROC of 4HPC-Bagging detectors\n";
  for (CK kind : {CK::kBayesNet, CK::kJ48, CK::kJRip, CK::kRepTree}) {
    const std::string name(ml::classifier_kind_name(kind));
    print_curve("4HPC-Bagging-" + name,
                core::run_cell_scores(ctx, kind, EK::kBagging, 4));
  }

  std::cout << "\nFigure 4b — 8HPC-General vs 2HPC-Boosted\n";
  for (CK kind : {CK::kJRip, CK::kOneR}) {
    const std::string name(ml::classifier_kind_name(kind));
    print_curve("8HPC-" + name,
                core::run_cell_scores(ctx, kind, EK::kGeneral, 8));
    print_curve("2HPC-Boosted-" + name,
                core::run_cell_scores(ctx, kind, EK::kAdaBoost, 2));
  }
  std::cout << "\nPaper shape check: in (b) each classifier's 2HPC-Boosted "
               "curve should dominate (or match) its 8HPC general curve.\n";
  return 0;
}

// Ablation (beyond the paper's tables): detector robustness under capture
// faults — the run-time analogue of the paper's low-HPC claim.
//
// The paper argues ensembles let a detector keep its accuracy as the HPC
// budget shrinks from 16 to 2 counters. A real deployment loses data in a
// second dimension too: dropped samples, crashed/truncated runs, and
// glitched counter reads (Kuruvila et al. show HMD accuracy collapses under
// perturbed HPC inputs). This bench sweeps a fault-rate scale through the
// full resilient-capture pipeline — retries, quarantine, shortest-common-
// interval alignment, screening, imputation — and evaluates General vs
// AdaBoost vs Bagging J48 detectors at every HPC budget on the faulted
// data, via the PR 2 grid runner. Two claims are under test:
//   1. the capture layer never aborts, even under the heavy profile — it
//      degrades (quarantine/impute) and reports what it did;
//   2. ensemble detectors degrade more gracefully than the general model
//      as fault rates rise, especially at the deployable 4/2-HPC budgets.
//
// Flags (bench_util): --quick, --seed, --threads, --fault-seed. The
// --faults profile flag does not pick the sweep's stochastic rates (the
// sweep owns those), but its unavailable-events list and the fault seed
// carry over — `--faults heavy` therefore also exercises the
// degraded-PMU path at every rate.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "support/table.h"

namespace {

/// A composite fault load parameterised by one scale knob, so the sweep
/// reads as "how bad is the collector allowed to get".
hmd::hpc::FaultConfig faults_at(double rate, std::uint64_t seed) {
  hmd::hpc::FaultConfig f;
  f.sample_drop_rate = rate;
  f.run_crash_rate = rate;
  f.counter_glitch_rate = rate / 2.0;
  f.truncate_rate = rate;
  f.seed = seed;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmd;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const std::uint64_t fault_seed = cfg.capture.faults.seed;

  // The sweep: clean baseline up to the heavy profile's 8% composite load.
  constexpr double kRates[] = {0.0, 0.02, 0.04, 0.08};

  // Ensembles over one strong base family (J48, the paper's best tree) at
  // every HPC budget the paper studies.
  const ml::EnsembleKind kEnsembles[] = {ml::EnsembleKind::kGeneral,
                                         ml::EnsembleKind::kAdaBoost,
                                         ml::EnsembleKind::kBagging};
  constexpr std::size_t kHpcs[] = {16, 8, 4, 2};

  std::vector<core::GridCell> cells;
  for (ml::EnsembleKind ens : kEnsembles)
    for (std::size_t hpcs : kHpcs)
      cells.push_back({ml::ClassifierKind::kJ48, ens, hpcs});

  TextTable health("Ablation — capture health vs fault rate (J48 pipeline)");
  health.set_header({"Fault rate", "Runs", "Retries", "Backoff ms",
                     "Quarantined", "Imputed cells", "Rows"});

  TextTable acc(
      "\nAblation — accuracy vs fault rate: General vs Boosted vs Bagging "
      "(J48 base)");
  acc.set_header(
      {"Fault rate", "Ensemble", "16HPC", "8HPC", "4HPC", "2HPC"});

  for (double rate : kRates) {
    core::ExperimentConfig fcfg = cfg;
    fcfg.capture.faults = faults_at(rate, fault_seed);
    fcfg.capture.faults.unavailable_events =
        cfg.capture.faults.unavailable_events;
    const std::string label = benchutil::pct(rate, 0) + "%";
    std::fprintf(stderr, "[ablation_faults] fault rate %s...\n",
                 label.c_str());

    const auto ctx = benchutil::prepare(fcfg, "ablation_faults");
    const hpc::CaptureReport& rep = ctx.capture.report;
    health.add_row(
        {label, std::to_string(ctx.capture.total_runs),
         std::to_string(rep.total_retries()),
         std::to_string(rep.total_backoff_ms()),
         std::to_string(rep.quarantined_apps()) + "/" +
             std::to_string(rep.apps.size()),
         std::to_string(rep.total_imputed_cells()) + " (" +
             benchutil::pct(rep.imputed_fraction()) + "%)",
         std::to_string(ctx.capture.num_rows())});

    const auto results = core::run_grid(ctx, cells, fcfg.threads);
    for (std::size_t e = 0; e < std::size(kEnsembles); ++e) {
      std::vector<std::string> row = {
          label, std::string(ml::ensemble_kind_name(kEnsembles[e]))};
      for (std::size_t h = 0; h < std::size(kHpcs); ++h)
        row.push_back(
            benchutil::pct(results[e * std::size(kHpcs) + h].metrics.accuracy));
      acc.add_row(std::move(row));
    }
  }

  health.print(std::cout);
  acc.print(std::cout);
  std::cout << "\nReading: each fault-rate block resamples the corpus under "
               "a faulted collector; the ensemble rows should lose less "
               "accuracy than the General row as the rate grows, and no "
               "fault rate may abort the campaign (quarantine, don't "
               "crash).\n";
  return 0;
}

// Family-classification ablation (extension; cf. Khasawneh et al. RAID'15,
// the paper's reference [11]): can the same 4 HPCs name the malware family,
// not just flag it?
//
// One specialized family-vs-benign detector per family, winner-take-all
// combination; reports per-family recall and the family confusion matrix
// over unknown applications.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/family.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace hmd;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "ablation_families");
  const auto corpus = sim::build_corpus(cfg.corpus);

  // Per-row family labels come from the row's application (group id is
  // the corpus index).
  auto labels_for = [&](const ml::Dataset& data) {
    std::vector<std::string> labels;
    labels.reserve(data.num_rows());
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      const auto& app = corpus[data.group(i)];
      labels.push_back(app.is_malware ? app.family : std::string{});
    }
    return labels;
  };

  const auto features = ctx.top_features(8);  // triage is offline forensics
  const ml::Dataset train = ctx.split.train.select_features(features);
  const ml::Dataset test = ctx.split.test.select_features(features);

  core::FamilyClassifier clf;
  clf.train(train, labels_for(train));
  std::fprintf(stderr, "[ablation_families] %zu family detectors trained\n",
               clf.families().size());

  const auto test_labels = labels_for(test);
  const auto confusion = core::evaluate_families(clf, test, test_labels);

  TextTable table("Family triage @8HPC (gate + one-vs-rest Bagging-J48 detectors)");
  table.set_header({"True family", "Samples", "Named correctly%",
                    "Flagged as malware%", "Most-confused-with"});
  for (const auto& [truth, row] : confusion) {
    std::size_t total = 0, correct = 0, flagged = 0;
    std::string top_other;
    std::size_t top_other_n = 0;
    for (const auto& [pred, n] : row) {
      total += n;
      if (pred == truth) correct += n;
      if (!pred.empty()) flagged += n;
      if (pred != truth && n > top_other_n) {
        top_other_n = n;
        top_other = pred.empty() ? "(benign)" : pred;
      }
    }
    const std::string name = truth.empty() ? "(benign)" : truth;
    const auto pct_of_total = [total](std::size_t n) {
      return TextTable::num(100.0 * static_cast<double>(n) /
                                static_cast<double>(total),
                            1);
    };
    table.add_row({name, std::to_string(total), pct_of_total(correct),
                   truth.empty() ? pct_of_total(flagged) + " (FP)"
                                 : pct_of_total(flagged),
                   top_other_n > 0 ? top_other : "-"});
  }
  table.print(std::cout);
  std::cout << "\n'Flagged as malware%' for (benign) is the false-alarm "
               "rate; for families it is\nbinary detection recall even when "
               "the named family is wrong.\n";
  return 0;
}

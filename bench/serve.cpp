// Fleet-scale streaming detection bench: cross-host batched inference
// versus per-interval scalar scoring, with tail-latency accounting.
//
// Drives a deterministic fleet (serve/fleet.h) through the sharded
// controller/worker serving pipeline (serve/controller.h) three times:
//
//   batched    — one predict_proba_batch call per (tick, shard) batch: the
//                serving layer's reason to exist.
//   unbatched  — the identical pipeline, but every admitted row scored
//                with a batch-of-one call (today's per-OnlineDetector
//                path). The A/B baseline for the headline speedup.
//   overloaded — batched again, with token-bucket admission sized below
//                the offered load: demonstrates explicit shed accounting
//                and the held-state verdicts of shed hosts.
//
// The batched and unbatched runs must produce bit-identical verdict
// streams (same hash) — the speedup is bought by batching alone, never by
// changed results — and the bench exits 1 on any mismatch. Results land
// in BENCH_serve.json: sustained intervals/sec, the batched-vs-unbatched
// scoring speedup, and P^2 p50/p95/p99 per pipeline stage. The counters
// section is bit-identical across --threads values (the ci.sh serve leg
// byte-diffs the verdict dumps of a 1-thread and a 4-thread run).
//
// Flags (beyond the shared --quick/--seed/--threads/--backend set):
//   --hosts N        fleet size            (default 2000; 256 in --quick)
//   --duration-ms N  virtual run length    (default 3000; 600 in --quick;
//                    one 10 ms tick per host per interval)
//   --out P          JSON output path      (default BENCH_serve.json)
//   --verdicts P     dump the batched run's verdict stream as text (the
//                    byte-diffable determinism witness; off by default)
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serve/controller.h"
#include "serve/fleet.h"

namespace {

using namespace hmd;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Score-stage throughput: rows scored per second of *scoring* time. The
/// cleanest A/B axis — it excludes the (identical) generation, queueing,
/// and state-stepping stages whose noise could mask the batching win.
double score_rows_per_sec(const serve::ServeReport& r) {
  const double total_us =
      r.timing.score.mean() * static_cast<double>(r.timing.score.count());
  return total_us > 0.0
             ? static_cast<double>(r.counters.scored_rows) * 1e6 / total_us
             : 0.0;
}

void print_stage(std::FILE* f, const char* name,
                 const serve::LatencyStats& s, const char* trail) {
  std::fprintf(f,
               "      \"%s\": {\"p50_us\": %.2f, \"p95_us\": %.2f, "
               "\"p99_us\": %.2f, \"mean_us\": %.2f, \"max_us\": %.2f, "
               "\"count\": %zu}%s\n",
               name, s.p50(), s.p95(), s.p99(), s.mean(), s.max(), s.count(),
               trail);
}

void print_run(std::FILE* f, const char* name, const serve::ServeReport& r,
               const char* trail) {
  const serve::ServeCounters& c = r.counters;
  const serve::ServeTiming& t = r.timing;
  std::fprintf(f, "  \"%s\": {\n", name);
  std::fprintf(
      f,
      "    \"counters\": {\"hosts\": %llu, \"ticks\": %llu, "
      "\"shards\": %llu, \"offered\": %llu, \"emitted\": %llu, "
      "\"missing\": %llu, \"admitted\": %llu, \"shed\": %llu, "
      "\"batches\": %llu, \"scored_rows\": %llu, "
      "\"straggler_batches\": %llu, \"hedges_launched\": %llu, "
      "\"alarms_raised\": %llu, \"alarmed_hosts\": %llu, "
      "\"malware_hosts\": %llu, \"verdict_hash\": \"%016llx\"},\n",
      static_cast<unsigned long long>(c.hosts),
      static_cast<unsigned long long>(c.ticks),
      static_cast<unsigned long long>(c.shards),
      static_cast<unsigned long long>(c.offered),
      static_cast<unsigned long long>(c.emitted),
      static_cast<unsigned long long>(c.missing),
      static_cast<unsigned long long>(c.admitted),
      static_cast<unsigned long long>(c.shed),
      static_cast<unsigned long long>(c.batches),
      static_cast<unsigned long long>(c.scored_rows),
      static_cast<unsigned long long>(c.straggler_batches),
      static_cast<unsigned long long>(c.hedges_launched),
      static_cast<unsigned long long>(c.alarms_raised),
      static_cast<unsigned long long>(c.alarmed_hosts),
      static_cast<unsigned long long>(c.malware_hosts),
      static_cast<unsigned long long>(c.verdict_hash));
  std::fprintf(
      f,
      "    \"timing\": {\n"
      "      \"wall_ms\": %.2f,\n"
      "      \"intervals_per_sec\": %.1f,\n"
      "      \"score_rows_per_sec\": %.1f,\n"
      "      \"hedge_wins\": %llu, \"hedge_wasted\": %llu, "
      "\"backpressure_stalls\": %llu,\n",
      t.wall_ms, t.intervals_per_sec, score_rows_per_sec(r),
      static_cast<unsigned long long>(t.hedge_wins),
      static_cast<unsigned long long>(t.hedge_wasted),
      static_cast<unsigned long long>(t.backpressure_stalls));
  print_stage(f, "gen", t.gen, ",");
  print_stage(f, "queue", t.queue, ",");
  print_stage(f, "score", t.score, ",");
  print_stage(f, "step", t.step, ",");
  print_stage(f, "e2e", t.e2e, "");
  std::fprintf(f, "    }\n  }%s\n", trail);
}

void dump_verdicts(const std::vector<serve::ServeVerdict>& vs,
                   const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[serve] cannot write %s\n", path);
    std::exit(1);
  }
  for (const serve::ServeVerdict& v : vs)
    std::fprintf(f, "%u %u %u %016llx %016llx %u %u\n", v.tick, v.host,
                 static_cast<unsigned>(v.outcome),
                 static_cast<unsigned long long>(
                     std::bit_cast<std::uint64_t>(v.score)),
                 static_cast<unsigned long long>(
                     std::bit_cast<std::uint64_t>(v.ewma)),
                 v.alarm ? 1U : 0U, v.stale ? 1U : 0U);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const core::ExperimentConfig exp = benchutil::config_from_args(argc, argv);
  const benchutil::ServeArgs args = benchutil::serve_args(argc, argv);
  bool quick = false;
  const char* verdict_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--verdicts") == 0)
      verdict_path = benchutil::flag_value("--verdicts", argc, argv, i);
  }
  const char* out_path = args.out != nullptr ? args.out : "BENCH_serve.json";

  serve::FleetConfig fc;
  fc.hosts = args.hosts > 0 ? args.hosts : (quick ? 256 : 2000);
  const std::uint64_t duration_ms =
      args.duration_ms > 0 ? args.duration_ms
                           : static_cast<std::uint64_t>(quick ? 600 : 3000);
  fc.ticks = static_cast<std::uint32_t>((duration_ms + 9) / 10);
  fc.seed = exp.corpus.seed;
  fc.threads = exp.threads;

  std::fprintf(stderr,
               "[serve] fleet: %zu hosts x %u ticks (%llu virtual ms), "
               "%zu worker threads, %s inference backend\n",
               fc.hosts, fc.ticks,
               static_cast<unsigned long long>(duration_ms),
               support::resolve_threads(exp.threads),
               std::string(ml::backend_kind_name(ml::infer_backend_kind()))
                   .c_str());

  const double t0 = now_ms();
  const serve::FleetSetup fleet = serve::make_fleet(fc);
  const double setup_ms = now_ms() - t0;
  std::fprintf(stderr,
               "[serve] setup done in %.0f ms: %zu-feature %s model, "
               "%zu bank rows, %zu/%zu malware hosts\n",
               setup_ms, fleet.num_features,
               std::string(fleet.backend->name()).c_str(),
               fleet.bank.size() / fleet.num_features, fleet.malware_hosts,
               fc.hosts);

  serve::ServeConfig base;
  base.threads = exp.threads;
  base.straggler_rate = 0.05;
  base.straggler_reps = 2;
  base.hedge = true;

  serve::ServeConfig batched = base;
  batched.batched = true;
  batched.record_verdicts = verdict_path != nullptr;
  const serve::ServeReport run_batched = serve::run_fleet(fleet, batched);
  std::fprintf(stderr,
               "[serve] batched:    %9.0f intervals/s  (%zu shards, "
               "score p99 %.1f us, e2e p99 %.1f us)\n",
               run_batched.timing.intervals_per_sec,
               static_cast<std::size_t>(run_batched.counters.shards),
               run_batched.timing.score.p99(), run_batched.timing.e2e.p99());

  serve::ServeConfig unbatched = base;
  unbatched.batched = false;
  unbatched.record_verdicts = false;
  const serve::ServeReport run_unbatched = serve::run_fleet(fleet, unbatched);
  std::fprintf(stderr, "[serve] unbatched:  %9.0f intervals/s\n",
               run_unbatched.timing.intervals_per_sec);

  // Overload demonstration: admission sized to ~60% of the offered load,
  // bursting to one full tick. Shed is explicit, counted, and survivable
  // (shed hosts hold their EWMA/alarm state via step_missing).
  serve::ServeConfig overloaded = base;
  overloaded.batched = true;
  overloaded.record_verdicts = false;
  overloaded.admit_per_tick = (static_cast<std::uint64_t>(fc.hosts) * 6) / 10;
  overloaded.admit_burst = fc.hosts;
  const serve::ServeReport run_over = serve::run_fleet(fleet, overloaded);
  std::fprintf(stderr,
               "[serve] overloaded: %9.0f intervals/s  (%llu shed of %llu "
               "emitted)\n",
               run_over.timing.intervals_per_sec,
               static_cast<unsigned long long>(run_over.counters.shed),
               static_cast<unsigned long long>(run_over.counters.emitted));

  const bool verdicts_match = run_batched.counters.verdict_hash ==
                              run_unbatched.counters.verdict_hash;
  const double speedup =
      score_rows_per_sec(run_unbatched) > 0.0
          ? score_rows_per_sec(run_batched) / score_rows_per_sec(run_unbatched)
          : 0.0;

  if (verdict_path != nullptr)
    dump_verdicts(run_batched.verdicts, verdict_path);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[serve] cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serve\",\n"
               "  \"threads\": %zu,\n"
               "  \"backend\": \"%s\",\n"
               "  \"hosts\": %zu,\n"
               "  \"ticks\": %u,\n"
               "  \"setup_ms\": %.0f,\n"
               "  \"batched_speedup\": %.3f,\n"
               "  \"verdicts_match\": %s,\n",
               support::resolve_threads(exp.threads),
               std::string(ml::backend_kind_name(ml::infer_backend_kind()))
                   .c_str(),
               fc.hosts, fc.ticks, setup_ms, speedup,
               verdicts_match ? "true" : "false");
  print_run(f, "batched", run_batched, ",");
  print_run(f, "unbatched", run_unbatched, ",");
  print_run(f, "overloaded", run_over, "");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::fprintf(stderr,
               "[serve] wrote %s (batched scoring speedup %.2fx, verdict "
               "streams %s)\n",
               out_path, speedup,
               verdicts_match ? "bit-identical" : "MISMATCHED");
  return verdicts_match ? 0 : 1;
}

// Shared plumbing for the reproduction harnesses (one binary per paper
// table/figure). Every binary accepts:
//   --quick   run on a reduced corpus (fast smoke mode, shapes only)
//   --seed N  override the corpus seed
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/hmd.h"
#include "support/table.h"

namespace hmd::benchutil {

/// Paper-scale configuration: 32 behaviour templates instantiated into a
/// 142-application corpus, 20 intervals per app, 4-counter PMU, multi-run
/// batched capture.
inline core::ExperimentConfig standard_config() {
  core::ExperimentConfig cfg;
  return cfg;  // defaults are the paper-scale settings
}

/// Reduced configuration for smoke runs (--quick).
inline core::ExperimentConfig quick_config() {
  core::ExperimentConfig cfg;
  cfg.corpus.benign_per_template = 2;
  cfg.corpus.malware_per_template = 2;
  cfg.corpus.intervals_per_app = 10;
  return cfg;
}

inline core::ExperimentConfig config_from_args(int argc, char** argv) {
  core::ExperimentConfig cfg = standard_config();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) cfg = quick_config();
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      cfg.corpus.seed = std::strtoull(argv[i + 1], nullptr, 10);
  }
  return cfg;
}

/// Capture the corpus with progress reporting on stderr.
inline core::ExperimentContext prepare(const core::ExperimentConfig& cfg,
                                       const char* what) {
  std::fprintf(stderr,
               "[%s] capturing corpus (%u benign + %u malware variants per "
               "template, %u intervals, multi-run 4-counter PMU)...\n",
               what, cfg.corpus.benign_per_template,
               cfg.corpus.malware_per_template, cfg.corpus.intervals_per_app);
  const auto t0 = std::chrono::steady_clock::now();
  auto ctx = core::prepare_experiment(cfg);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::fprintf(stderr,
               "[%s] capture done: %zu samples (%zu train / %zu test), %llu "
               "container runs, %lld ms\n",
               what, ctx.full.num_rows(), ctx.split.train.num_rows(),
               ctx.split.test.num_rows(),
               static_cast<unsigned long long>(ctx.capture.total_runs),
               static_cast<long long>(ms));
  return ctx;
}

inline std::string pct(double v, int precision = 1) {
  return TextTable::num(100.0 * v, precision);
}

}  // namespace hmd::benchutil

// Shared plumbing for the reproduction harnesses (one binary per paper
// table/figure). Every binary accepts:
//   --quick      run on a reduced corpus (fast smoke mode, shapes only)
//   --seed N     override the corpus seed
//   --threads N  worker threads for capture + grid evaluation
//                (default: HMD_THREADS env, else hardware_concurrency;
//                 results are bit-identical for any thread count)
//   --faults P   fault-injection profile for the capture campaign:
//                none (default) | light | heavy (see hpc::fault_profile)
//   --fault-seed N  seed of the fault stream (default 0); faulted captures
//                are bit-identical for a given (corpus seed, fault seed)
//   --checkpoint DIR  persist per-app capture state to DIR as each app
//                completes (fresh campaign; DIR must not already hold one)
//   --resume     with --checkpoint: reload completed apps from DIR and
//                re-execute only quarantined or missing ones. The resumed
//                capture is bit-identical to an uninterrupted run; a config
//                fingerprint mismatch (seed, faults, events, protocol, ...)
//                is a hard error.
//   --backend B  inference backend for grid evaluation: flat (default,
//                batched branch-free engine) | scalar (reference row walk).
//                Backends are bit-identical, so all emitted tables/figures
//                are byte-identical across this flag (ci.sh diffs them) —
//                it only changes evaluation speed.
//
// Serving benches (bench/serve) additionally share, via serve_args:
//   --hosts N        fleet size (hosts monitored concurrently)
//   --duration-ms N  fleet run length in virtual milliseconds (10 ms/tick)
//   --out P          JSON report path
//
// CLI error contract: an unknown value for any of these flags, a numeric
// value that is negative or overflows its type, or a flag that names a
// value but sits last on the command line, reports the problem on stderr
// and exits 2 — flags are never silently ignored or clamped.
#pragma once

#include <cerrno>
#include <chrono>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/hmd.h"
#include "hpc/faults.h"
#include "support/parallel.h"
#include "support/table.h"

namespace hmd::benchutil {

/// Paper-scale configuration: 32 behaviour templates instantiated into a
/// 142-application corpus, 20 intervals per app, 4-counter PMU, multi-run
/// batched capture.
inline core::ExperimentConfig standard_config() {
  core::ExperimentConfig cfg;
  return cfg;  // defaults are the paper-scale settings
}

/// Reduced configuration for smoke runs (--quick).
inline core::ExperimentConfig quick_config() {
  core::ExperimentConfig cfg;
  cfg.corpus.benign_per_template = 2;
  cfg.corpus.malware_per_template = 2;
  cfg.corpus.intervals_per_app = 10;
  return cfg;
}

/// The value of a flag that requires one. A value-taking flag as the last
/// argument is a user error, not something to silently ignore (the old
/// behaviour: `fig3_accuracy --seed` ran seed 0 without a word).
inline const char* flag_value(const char* flag, int argc, char** argv,
                              int i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", flag);
    std::exit(2);
  }
  return argv[i + 1];
}

/// Strict decimal parse for seed-style flags: every character must be a
/// digit (which also rejects negative values), and the value must fit a
/// uint64. strtoull's permissive parsing ("7x" -> 7, "garbage" -> 0) would
/// silently run the wrong experiment, and its ERANGE clamp would quietly
/// turn an overflowing seed into 2^64-1 — report and exit 2 like every
/// other malformed flag instead.
inline std::uint64_t parse_u64_flag(const char* flag, const char* text) {
  bool ok = *text != '\0';
  for (const char* p = text; *p != '\0'; ++p)
    ok = ok && std::isdigit(static_cast<unsigned char>(*p)) != 0;
  if (!ok) {
    std::fprintf(stderr, "invalid value '%s' for %s (want a non-negative "
                         "integer)\n",
                 text, flag);
    std::exit(2);
  }
  errno = 0;
  const std::uint64_t value = std::strtoull(text, nullptr, 10);
  if (errno == ERANGE) {
    std::fprintf(stderr, "value '%s' for %s is out of range (max %llu)\n",
                 text, flag,
                 static_cast<unsigned long long>(~0ULL));
    std::exit(2);
  }
  return value;
}

inline core::ExperimentConfig config_from_args(int argc, char** argv) {
  // Parse every flag into locals first; the base config (standard vs
  // --quick) is chosen afterwards. Applying --quick in the parse loop used
  // to reassign the whole ExperimentConfig, silently discarding an
  // already-parsed --seed ("fig3_accuracy --seed 7 --quick" ran seed 0).
  bool quick = false;
  std::optional<std::uint64_t> seed;
  std::size_t threads = 0;
  hpc::FaultProfile profile = hpc::FaultProfile::kNone;
  std::uint64_t fault_seed = 0;
  std::string checkpoint_dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--resume") == 0) resume = true;
    if (std::strcmp(argv[i], "--seed") == 0)
      seed = parse_u64_flag("--seed", flag_value("--seed", argc, argv, i));
    if (std::strcmp(argv[i], "--threads") == 0) {
      const char* value = flag_value("--threads", argc, argv, i);
      const auto parsed = support::parse_thread_count(value);
      if (!parsed) {
        std::fprintf(stderr,
                     "invalid value '%s' for --threads (want a positive "
                     "integer <= 1024)\n",
                     value);
        std::exit(2);
      }
      threads = *parsed;
    }
    if (std::strcmp(argv[i], "--faults") == 0) {
      const char* value = flag_value("--faults", argc, argv, i);
      const auto parsed = hpc::fault_profile_from_name(value);
      if (!parsed) {
        std::fprintf(stderr,
                     "unknown --faults profile '%s' (want none|light|heavy)\n",
                     value);
        std::exit(2);
      }
      profile = *parsed;
    }
    if (std::strcmp(argv[i], "--fault-seed") == 0)
      fault_seed = parse_u64_flag("--fault-seed",
                                  flag_value("--fault-seed", argc, argv, i));
    if (std::strcmp(argv[i], "--checkpoint") == 0)
      checkpoint_dir = flag_value("--checkpoint", argc, argv, i);
    if (std::strcmp(argv[i], "--backend") == 0) {
      const char* value = flag_value("--backend", argc, argv, i);
      const auto parsed = ml::backend_kind_from_name(value);
      if (!parsed) {
        std::fprintf(stderr,
                     "unknown --backend '%s' (want scalar|flat)\n", value);
        std::exit(2);
      }
      ml::set_infer_backend_kind(*parsed);
    }
  }
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint DIR\n");
    std::exit(2);
  }

  core::ExperimentConfig cfg = quick ? quick_config() : standard_config();
  if (seed) cfg.corpus.seed = *seed;
  cfg.threads = threads;  // 0 falls back to HMD_THREADS, then auto
  cfg.capture.faults = hpc::fault_profile(profile, fault_seed);
  cfg.capture.checkpoint_dir = std::move(checkpoint_dir);
  cfg.capture.resume = resume;
  return cfg;
}

/// Capture the corpus with progress reporting on stderr. If
/// `capture_ms_out` is non-null it receives the capture wall-clock.
inline core::ExperimentContext prepare(const core::ExperimentConfig& cfg,
                                       const char* what,
                                       long long* capture_ms_out = nullptr) {
  // One banner line carries the whole execution shape: thread count and
  // the inference backend actually in effect (flag or HMD_INFER_BACKEND).
  std::fprintf(stderr,
               "[%s] capturing corpus (%u benign + %u malware variants per "
               "template, %u intervals, multi-run 4-counter PMU, %zu "
               "threads, %s inference backend, faults: %s)...\n",
               what, cfg.corpus.benign_per_template,
               cfg.corpus.malware_per_template, cfg.corpus.intervals_per_app,
               support::resolve_threads(cfg.threads),
               std::string(ml::backend_kind_name(ml::infer_backend_kind()))
                   .c_str(),
               hpc::describe_faults(cfg.capture.faults).c_str());
  if (!cfg.capture.checkpoint_dir.empty()) {
    std::fprintf(stderr, "[%s] checkpoint: %s (%s campaign)\n", what,
                 cfg.capture.checkpoint_dir.c_str(),
                 cfg.capture.resume ? "resuming" : "fresh");
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto ctx = core::prepare_experiment(cfg);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::fprintf(stderr,
               "[%s] capture done: %zu samples (%zu train / %zu test), %llu "
               "container runs, %lld ms\n",
               what, ctx.full.num_rows(), ctx.split.train.num_rows(),
               ctx.split.test.num_rows(),
               static_cast<unsigned long long>(ctx.capture.total_runs),
               static_cast<long long>(ms));
  const hpc::CaptureResumeStats& rs = ctx.resume_stats;
  if (rs.checkpointing) {
    std::fprintf(stderr,
                 "[%s] checkpoint: %zu apps reused (%llu runs from previous "
                 "sessions), %zu executed (%llu runs this session)\n",
                 what, rs.loaded_apps,
                 static_cast<unsigned long long>(rs.loaded_runs),
                 rs.executed_apps,
                 static_cast<unsigned long long>(rs.session_runs));
  }
  const hpc::CaptureReport& rep = ctx.capture.report;
  if (rep.total_retries() > 0 || rep.quarantined_apps() > 0 ||
      rep.total_imputed_cells() > 0 || !rep.degraded_events.empty()) {
    std::fprintf(stderr,
                 "[%s] capture faults handled: %llu retries (%llu ms backoff "
                 "accounted), %zu/%zu apps quarantined, %zu/%zu cells "
                 "imputed, %zu events degraded\n",
                 what,
                 static_cast<unsigned long long>(rep.total_retries()),
                 static_cast<unsigned long long>(rep.total_backoff_ms()),
                 rep.quarantined_apps(), rep.apps.size(),
                 rep.total_imputed_cells(), rep.total_cells(),
                 rep.degraded_events.size());
  }
  if (capture_ms_out != nullptr) *capture_ms_out = ms;
  return ctx;
}

/// Flags shared by the serving benches, parsed with the same error
/// contract as the experiment flags (unknown/malformed values exit 2).
/// Zero / nullptr fields mean "flag absent — use the bench's default".
struct ServeArgs {
  std::size_t hosts = 0;          ///< --hosts: fleet size
  std::uint64_t duration_ms = 0;  ///< --duration-ms: virtual run length
  const char* out = nullptr;      ///< --out: JSON report path
};

inline ServeArgs serve_args(int argc, char** argv) {
  ServeArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hosts") == 0) {
      const std::uint64_t v =
          parse_u64_flag("--hosts", flag_value("--hosts", argc, argv, i));
      if (v == 0) {
        std::fprintf(stderr, "--hosts must be positive\n");
        std::exit(2);
      }
      args.hosts = static_cast<std::size_t>(v);
    }
    if (std::strcmp(argv[i], "--duration-ms") == 0) {
      args.duration_ms = parse_u64_flag(
          "--duration-ms", flag_value("--duration-ms", argc, argv, i));
      if (args.duration_ms == 0) {
        std::fprintf(stderr, "--duration-ms must be positive\n");
        std::exit(2);
      }
    }
    if (std::strcmp(argv[i], "--out") == 0)
      args.out = flag_value("--out", argc, argv, i);
  }
  return args;
}

/// Machine-readable performance record of one grid-bench run, for tracking
/// the parallel layer's throughput across commits.
struct GridBenchReport {
  const char* bench = "";       ///< binary name, e.g. "fig3_accuracy"
  long long capture_ms = 0;     ///< corpus capture wall-clock
  long long grid_ms = 0;        ///< grid evaluation wall-clock
  std::size_t threads = 0;      ///< effective worker count
  std::size_t cells = 0;        ///< grid cells evaluated
};

/// Write `report` as JSON (default BENCH_grid.json in the working dir).
inline void write_grid_bench_json(const GridBenchReport& report,
                                  const char* path = "BENCH_grid.json") {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[%s] cannot write %s\n", report.bench, path);
    return;
  }
  const double grid_sec = static_cast<double>(report.grid_ms) / 1000.0;
  const double cells_per_sec =
      grid_sec > 0.0 ? static_cast<double>(report.cells) / grid_sec : 0.0;
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"threads\": %zu,\n"
               "  \"capture_ms\": %lld,\n"
               "  \"grid_ms\": %lld,\n"
               "  \"total_ms\": %lld,\n"
               "  \"cells\": %zu,\n"
               "  \"cells_per_sec\": %.3f\n"
               "}\n",
               report.bench, report.threads, report.capture_ms,
               report.grid_ms, report.capture_ms + report.grid_ms,
               report.cells, cells_per_sec);
  std::fclose(f);
  std::fprintf(stderr, "[%s] wrote %s (%zu cells, %zu threads, %.1f cells/s)\n",
               report.bench, path, report.cells, report.threads,
               cells_per_sec);
}

inline std::string pct(double v, int precision = 1) {
  return TextTable::num(100.0 * v, precision);
}

}  // namespace hmd::benchutil

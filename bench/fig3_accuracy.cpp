// Reproduces paper Figure 3: "Accuracy results for various ML classifiers
// with varying number of HPCs".
//
// For each of the 8 general classifiers we report detection accuracy with
// the top {16, 8, 4, 2} ranked HPCs, for the General, AdaBoost ("Boosted")
// and Bagging variants — the full evaluation grid behind the figure.
#include <iostream>

#include "bench_util.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace hmd;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "fig3");

  const std::size_t hpc_counts[] = {16, 8, 4, 2};

  TextTable table("Figure 3 — Detection accuracy (%) vs number of HPCs");
  table.set_header({"Classifier", "Variant", "16HPC", "8HPC", "4HPC",
                    "2HPC"});

  for (ml::ClassifierKind kind : ml::all_classifier_kinds()) {
    for (ml::EnsembleKind ens : ml::all_ensemble_kinds()) {
      std::vector<std::string> row{
          std::string(ml::classifier_kind_name(kind)),
          std::string(ml::ensemble_kind_name(ens))};
      for (std::size_t hpcs : hpc_counts) {
        const auto cell = core::run_cell(ctx, kind, ens, hpcs);
        row.push_back(benchutil::pct(cell.metrics.accuracy));
      }
      table.add_row(std::move(row));
    }
    std::fprintf(stderr, "[fig3] %s done\n",
                 std::string(ml::classifier_kind_name(kind)).c_str());
  }
  table.print(std::cout);

  std::cout <<
      "\nPaper shape check: general classifiers lose accuracy as HPCs "
      "shrink;\nensemble variants at 2-4 HPCs recover to the 8-16 HPC "
      "level\n(paper's example: REPTree 2HPC-Boosted ~= its 16HPC ~88%).\n";
  return 0;
}

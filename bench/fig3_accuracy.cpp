// Reproduces paper Figure 3: "Accuracy results for various ML classifiers
// with varying number of HPCs".
//
// For each of the 8 general classifiers we report detection accuracy with
// the top {16, 8, 4, 2} ranked HPCs, for the General, AdaBoost ("Boosted")
// and Bagging variants — the full evaluation grid behind the figure. The
// 96 cells are evaluated concurrently via core::run_grid (results are
// bit-identical for any --threads value) and the wall-clock numbers are
// recorded in BENCH_grid.json.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace hmd;
  const auto cfg = benchutil::config_from_args(argc, argv);
  long long capture_ms = 0;
  const auto ctx = benchutil::prepare(cfg, "fig3", &capture_ms);

  const auto cells = core::full_grid();
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = core::run_grid(ctx, cells, cfg.threads);
  const auto grid_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::fprintf(stderr, "[fig3] grid done: %zu cells, %lld ms\n",
               results.size(), static_cast<long long>(grid_ms));

  TextTable table("Figure 3 — Detection accuracy (%) vs number of HPCs");
  table.set_header({"Classifier", "Variant", "16HPC", "8HPC", "4HPC",
                    "2HPC"});

  // full_grid() is classifier-major, then ensemble, then {16,8,4,2} —
  // exactly one table row per 4 consecutive results.
  for (std::size_t i = 0; i < results.size(); i += 4) {
    std::vector<std::string> row{
        std::string(ml::classifier_kind_name(results[i].classifier)),
        std::string(ml::ensemble_kind_name(results[i].ensemble))};
    for (std::size_t c = 0; c < 4; ++c)
      row.push_back(benchutil::pct(results[i + c].metrics.accuracy));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  benchutil::write_grid_bench_json({"fig3_accuracy", capture_ms,
                                    static_cast<long long>(grid_ms),
                                    support::resolve_threads(cfg.threads),
                                    results.size()});

  std::cout <<
      "\nPaper shape check: general classifiers lose accuracy as HPCs "
      "shrink;\nensemble variants at 2-4 HPCs recover to the 8-16 HPC "
      "level\n(paper's example: REPTree 2HPC-Boosted ~= its 16HPC ~88%).\n";
  return 0;
}

// Ablation (beyond the paper's tables): detector robustness under
// *adversarial* counter perturbation — the worst-case companion of
// ablation_faults' random collector noise.
//
// Kuruvila et al. show that small bounded perturbations of the HPC stream
// collapse single-model HMD accuracy, and that adversarial retraining
// restores most of it; Stamp et al. ask whether ensemble diversity itself
// buys resistance. This bench sweeps a per-event perturbation budget
// through the attack layer (src/attack) and evaluates General vs AdaBoost
// vs Bagging J48 detectors at every HPC budget, reporting for each cell:
//
//   clean            baseline model on the honest test split
//   attacked         baseline on evasion-perturbed malware rows
//   retrain transfer adversarially retrained model on the *baseline's*
//                    perturbations (the attacker has not adapted)
//   retrain adaptive retrained model under a fresh evasion search against
//                    itself (the attacker has adapted)
//   margin vote      baseline + perturbation-aware vote: low-agreement
//                    verdicts escalate to malware (Verdict::suspect online)
//
// The evasion search only ever accepts score decreases, so attacked
// accuracy <= clean accuracy holds exactly per cell (ci.sh asserts this on
// the JSON). All results are bit-identical across runs and --threads
// values at a fixed --seed: per-row searches stream their randomness from
// the row index, and cells evaluate as independent pure functions.
//
// Flags (beyond the shared --quick/--seed/--threads/--backend set):
//   --out P    JSON output path (default BENCH_adversarial.json)
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "attack/defense.h"
#include "bench_util.h"
#include "support/table.h"

namespace {

using namespace hmd;

/// Everything the bench reports about one (budget, cell) evaluation.
struct BenchCell {
  core::GridCell cell;
  ml::DetectorMetrics clean;
  ml::DetectorMetrics attacked;
  double evasion_rate = 0.0;
  ml::DetectorMetrics retrain_clean;
  ml::DetectorMetrics retrain_transfer;
  ml::DetectorMetrics retrain_adaptive;
  double retrain_adaptive_evasion = 0.0;
  ml::DetectorMetrics margin_defended;
  double margin_suspect_fraction = 0.0;
};

BenchCell evaluate_cell(const core::ExperimentContext& ctx,
                        const core::GridCell& cell,
                        const attack::PerturbationBudget& budget,
                        const attack::EvasionSearchConfig& search,
                        std::uint64_t attack_seed) {
  const ml::Split& projected = ctx.projected_split(cell.hpcs);
  const auto baseline = ml::make_detector(cell.classifier, cell.ensemble,
                                          ctx.config.model_seed);
  baseline->train(projected.train);

  // White-box attack on the test split (inner threads=1: the grid map over
  // cells is the parallel axis).
  const attack::DatasetAttackResult test_attack = attack::attack_dataset(
      *baseline, projected.test, budget, search, attack_seed, 1);

  BenchCell out;
  out.cell = cell;
  out.clean = attack::metrics_of(projected.test, test_attack.clean_scores);
  out.attacked =
      attack::metrics_of(projected.test, test_attack.attacked_scores);
  out.evasion_rate = test_attack.evasion_rate();

  // Defence 1: adversarial retraining — perturbations crafted against the
  // baseline on the TRAINING split augment it; the retrained model is
  // scored on the baseline's test perturbations (transfer) and under a
  // fresh evasion search against itself (adaptive).
  const auto retrained = attack::adversarial_retrain(
      *baseline, projected.train, cell.classifier, cell.ensemble,
      ctx.config.model_seed, budget, search,
      attack_seed ^ 0x7261696eULL, 1);
  out.retrain_clean = attack::metrics_of(
      projected.test,
      ml::make_active_backend(*retrained)->predict_proba_batch(
          projected.test));
  out.retrain_transfer = attack::metrics_of(
      projected.test,
      attack::transfer_scores(*retrained, projected.test, test_attack));
  const attack::DatasetAttackResult adaptive = attack::attack_dataset(
      *retrained, projected.test, budget, search, attack_seed, 1);
  out.retrain_adaptive =
      attack::metrics_of(projected.test, adaptive.attacked_scores);
  out.retrain_adaptive_evasion = adaptive.evasion_rate();

  // Defence 2: perturbation-aware vote on the unmodified baseline.
  std::size_t suspects = 0;
  const std::vector<double> defended = attack::margin_defended_scores(
      *baseline, projected.test, test_attack, attack::MarginVoteConfig{},
      &suspects);
  out.margin_defended = attack::metrics_of(projected.test, defended);
  out.margin_suspect_fraction =
      projected.test.num_rows() == 0
          ? 0.0
          : static_cast<double>(suspects) /
                static_cast<double>(projected.test.num_rows());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = benchutil::config_from_args(argc, argv);
  const char* out_path = "BENCH_adversarial.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0)
      out_path = benchutil::flag_value("--out", argc, argv, i);
  }

  // The sweep: relative per-event budgets from barely-there to generous,
  // each with a small absolute floor so near-zero counters can move at all
  // (malware can always *add* a few events; it cannot scale zero).
  constexpr double kRelBudgets[] = {0.02, 0.05, 0.10};
  constexpr double kAbsFloor = 8.0;
  const attack::EvasionSearchConfig search{};

  const ml::EnsembleKind kEnsembles[] = {ml::EnsembleKind::kGeneral,
                                         ml::EnsembleKind::kAdaBoost,
                                         ml::EnsembleKind::kBagging};
  constexpr std::size_t kHpcs[] = {16, 8, 4, 2};
  std::vector<core::GridCell> cells;
  for (ml::EnsembleKind ens : kEnsembles)
    for (std::size_t hpcs : kHpcs)
      cells.push_back({ml::ClassifierKind::kJ48, ens, hpcs});

  const auto ctx = benchutil::prepare(cfg, "ablation_adversarial");
  const std::uint64_t attack_seed = mix64(cfg.corpus.seed ^ 0xADE5A17ULL);

  TextTable table(
      "Ablation — accuracy under adversarial counter perturbation "
      "(J48 base; accuracies in %, evasion = fraction of detected malware "
      "rows flipped)");
  table.set_header({"Budget", "Ensemble", "HPCs", "Clean", "Attacked",
                    "Evasion", "Retrain xfer", "Retrain adapt",
                    "Margin vote"});

  std::vector<std::vector<BenchCell>> sweep;
  for (double rel : kRelBudgets) {
    attack::PerturbationBudget budget;
    budget.max_rel_delta = rel;
    budget.max_abs_delta = kAbsFloor;
    std::fprintf(stderr, "[ablation_adversarial] budget %s...\n",
                 attack::describe_budget(budget).c_str());
    sweep.push_back(core::map_grid(
        ctx, cells, cfg.threads, [&](const core::GridCell& cell) {
          return evaluate_cell(ctx, cell, budget, search, attack_seed);
        }));
    for (const BenchCell& c : sweep.back()) {
      table.add_row({benchutil::pct(rel, 0) + "%",
                     std::string(ml::ensemble_kind_name(c.cell.ensemble)),
                     std::to_string(c.cell.hpcs),
                     benchutil::pct(c.clean.accuracy),
                     benchutil::pct(c.attacked.accuracy),
                     benchutil::pct(c.evasion_rate),
                     benchutil::pct(c.retrain_transfer.accuracy),
                     benchutil::pct(c.retrain_adaptive.accuracy),
                     benchutil::pct(c.margin_defended.accuracy)});
    }
  }

  table.print(std::cout);
  std::cout
      << "\nReading: Attacked <= Clean holds exactly (the evasion search "
         "only accepts score decreases). Retrain xfer is the hardened "
         "headline — the attacker still aims at the old model; Retrain "
         "adapt re-runs the search against the hardened model; Margin vote "
         "escalates low-agreement verdicts to malware on the unmodified "
         "baseline, so it can only help where members disagree "
         "(ensembles).\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[ablation_adversarial] cannot write %s\n",
                 out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"ablation_adversarial\",\n"
               "  \"seed\": %llu,\n"
               "  \"classifier\": \"J48\",\n"
               "  \"abs_floor\": %.6f,\n"
               "  \"budgets\": [\n",
               static_cast<unsigned long long>(cfg.corpus.seed), kAbsFloor);
  for (std::size_t b = 0; b < sweep.size(); ++b) {
    std::fprintf(f,
                 "    {\n"
                 "      \"max_rel_delta\": %.6f,\n"
                 "      \"cells\": [\n",
                 kRelBudgets[b]);
    for (std::size_t c = 0; c < sweep[b].size(); ++c) {
      const BenchCell& cell = sweep[b][c];
      std::fprintf(
          f,
          "        {\"ensemble\": \"%s\", \"hpcs\": %zu, "
          "\"clean_accuracy\": %.6f, \"attacked_accuracy\": %.6f, "
          "\"evasion_rate\": %.6f, "
          "\"retrain_clean_accuracy\": %.6f, "
          "\"retrain_transfer_accuracy\": %.6f, "
          "\"retrain_adaptive_accuracy\": %.6f, "
          "\"retrain_adaptive_evasion\": %.6f, "
          "\"margin_defended_accuracy\": %.6f, "
          "\"margin_suspect_fraction\": %.6f}%s\n",
          std::string(ml::ensemble_kind_name(cell.cell.ensemble)).c_str(),
          cell.cell.hpcs, cell.clean.accuracy, cell.attacked.accuracy,
          cell.evasion_rate, cell.retrain_clean.accuracy,
          cell.retrain_transfer.accuracy, cell.retrain_adaptive.accuracy,
          cell.retrain_adaptive_evasion, cell.margin_defended.accuracy,
          cell.margin_suspect_fraction,
          c + 1 < sweep[b].size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n",
                 b + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[ablation_adversarial] wrote %s\n", out_path);
  return 0;
}

// Concept-drift bench: detection lag and accuracy recovery of the
// drift-aware model refresh under a time-evolving fleet.
//
// Builds a fleet whose workload SHIFTS mid-run (serve/fleet.h drift
// config): the last four malware behaviour templates are held out of both
// training corpora entirely, and at the campaign onset (tick ticks/2) a
// hash-selected quarter of the benign hosts starts running one of those
// novel families, staggered over a few ticks, while the remaining benign
// hosts' counters drift upward by a ramped scale factor. The deployed
// model has never seen any of it.
//
// Two serving runs over the identical workload:
//
//   frozen   — drift detection on, refresh OFF: the paper's static model.
//              Measures how far accuracy erodes and stays eroded.
//   adaptive — the full loop: Page-Hinkley + tail-gate trigger, window
//              harvest labelled by analyst triage, background retrain
//              (ml/refit.h), hot-swap at trigger + refresh_lag ticks.
//
// BENCH_drift.json reports the phase accuracies (pre-onset, post-onset,
// post-refresh tail for both runs), the detection lag in ticks, the
// recovery fraction (how much of the erosion the refresh won back), and
// the refresh cost (retrain wall-clock, swap wait, harvested rows). The
// bench exits 1 if the trigger never fires or the swap never lands —
// detection and refresh are the contract, not best-effort.
//
// Flags (beyond the shared --quick/--seed/--threads/--backend set):
//   --hosts N           fleet size          (default 600; 160 in --quick)
//   --duration-ms N     virtual run length  (default 3000; 2000 in --quick)
//   --out P             JSON output path    (default BENCH_drift.json)
//   --verdicts P        dump the adaptive run's verdict stream as text
//                       (byte-diffable across --threads, straight through
//                       the mid-run hot-swap)
//   --checkpoint-dir P  retrain re-captures the training split under this
//                       checkpoint store (kill-and-resume safe; the ci.sh
//                       drift leg kills a retrain mid-capture and diffs)
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serve/controller.h"
#include "serve/fleet.h"

namespace {

using namespace hmd;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void dump_verdicts(const std::vector<serve::ServeVerdict>& vs,
                   const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[drift] cannot write %s\n", path);
    std::exit(1);
  }
  for (const serve::ServeVerdict& v : vs)
    std::fprintf(f, "%u %u %u %016llx %016llx %u %u\n", v.tick, v.host,
                 static_cast<unsigned>(v.outcome),
                 static_cast<unsigned long long>(
                     std::bit_cast<std::uint64_t>(v.score)),
                 static_cast<unsigned long long>(
                     std::bit_cast<std::uint64_t>(v.ewma)),
                 v.alarm ? 1U : 0U, v.stale ? 1U : 0U);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const core::ExperimentConfig exp = benchutil::config_from_args(argc, argv);
  const benchutil::ServeArgs args = benchutil::serve_args(argc, argv);
  bool quick = false;
  const char* verdict_path = nullptr;
  const char* checkpoint_dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--verdicts") == 0)
      verdict_path = benchutil::flag_value("--verdicts", argc, argv, i);
    if (std::strcmp(argv[i], "--checkpoint-dir") == 0)
      checkpoint_dir =
          benchutil::flag_value("--checkpoint-dir", argc, argv, i);
  }
  const char* out_path = args.out != nullptr ? args.out : "BENCH_drift.json";

  serve::FleetConfig fc;
  fc.hosts = args.hosts > 0 ? args.hosts : (quick ? 160 : 600);
  const std::uint64_t duration_ms =
      args.duration_ms > 0 ? args.duration_ms
                           : static_cast<std::uint64_t>(quick ? 2000 : 3000);
  fc.ticks = static_cast<std::uint32_t>((duration_ms + 9) / 10);
  fc.seed = exp.corpus.seed;
  fc.threads = exp.threads;
  fc.drift.enabled = true;
  fc.drift.novel_templates = 4;
  fc.drift.campaign_fraction = 0.25;
  fc.drift.campaign_spread = 8;
  fc.drift.benign_shift = 0.2;
  fc.drift.benign_shift_ramp = 24;
  const std::uint32_t onset = fc.ticks / 2;  // FleetDriftConfig default

  std::fprintf(stderr,
               "[drift] fleet: %zu hosts x %u ticks, campaign onset tick %u "
               "(%zu novel families), %zu worker threads\n",
               fc.hosts, fc.ticks, onset, fc.drift.novel_templates,
               support::resolve_threads(exp.threads));

  const double t0 = now_ms();
  const serve::FleetSetup fleet = serve::make_fleet(fc);
  const double setup_ms = now_ms() - t0;
  std::fprintf(stderr,
               "[drift] setup done in %.0f ms: %zu static malware hosts, "
               "%zu campaign recruits of %zu hosts\n",
               setup_ms, fleet.malware_hosts, fleet.campaign_hosts, fc.hosts);

  serve::ServeConfig base;
  base.threads = exp.threads;
  base.record_verdicts = true;
  base.drift.enabled = true;
  base.drift.check_interval = 16;
  base.drift.warmup_checks = 2;
  base.drift.min_shards = 2;
  base.refresh.harvest_ticks = 16;
  base.refresh.refresh_lag_ticks = 48;
  if (checkpoint_dir != nullptr)
    base.refresh.checkpoint_dir = checkpoint_dir;

  serve::ServeConfig frozen = base;
  frozen.refresh.enabled = false;
  const serve::ServeReport run_frozen = serve::run_fleet(fleet, frozen);

  const serve::ServeReport run_adaptive = serve::run_fleet(fleet, base);
  const serve::ServeCounters& c = run_adaptive.counters;

  const bool triggered = c.drift_triggers > 0;
  const bool swapped = c.model_swaps > 0;
  const std::uint32_t trigger_tick =
      static_cast<std::uint32_t>(c.drift_trigger_tick);
  const std::uint32_t swap_tick = static_cast<std::uint32_t>(c.model_swap_tick);
  // trigger_tick is the END of the check interval that saw the shift; the
  // lag counts from the first drifted tick to that barrier.
  const std::uint64_t detection_lag =
      triggered && trigger_tick >= onset ? trigger_tick - onset + 1 : 0;

  // Phase accuracies. The tail window starts a few ticks after the swap so
  // the refreshed model's EWMAs have crossed the alarm hysteresis.
  const std::uint32_t tail_from =
      swapped ? std::min(fc.ticks, swap_tick + 8) : fc.ticks;
  const double pre = serve::verdict_window_accuracy(
      fleet, run_adaptive.verdicts, base.drift.check_interval, onset);
  const std::uint32_t degraded_until = swapped ? swap_tick : fc.ticks;
  const double post_onset = serve::verdict_window_accuracy(
      fleet, run_adaptive.verdicts, onset, degraded_until);
  const double post_refresh = serve::verdict_window_accuracy(
      fleet, run_adaptive.verdicts, tail_from, fc.ticks);
  const double frozen_tail = serve::verdict_window_accuracy(
      fleet, run_frozen.verdicts, tail_from, fc.ticks);
  // Recovery: the share of the frozen model's remaining tail headroom the
  // refresh captured — (refreshed - frozen) / (1 - frozen) over the same
  // tail window. 1.0 = the refresh reached perfect tail accuracy, 0 = it
  // bought nothing over the eroded static model. Robust to fleets whose
  // pre-onset accuracy is itself imperfect (the erosion-relative form
  // degenerates when post-onset >= pre-onset).
  const double headroom = 1.0 - frozen_tail;
  const double recovery =
      headroom > 1e-9
          ? std::clamp((post_refresh - frozen_tail) / headroom, 0.0, 1.0)
          : 1.0;

  std::fprintf(stderr,
               "[drift] trigger: tick %u (lag %llu ticks, %llu/%llu shards), "
               "swap: tick %u\n",
               trigger_tick, static_cast<unsigned long long>(detection_lag),
               static_cast<unsigned long long>(c.drift_tripped_shards),
               static_cast<unsigned long long>(c.shards), swap_tick);
  std::fprintf(stderr,
               "[drift] accuracy: pre %.4f -> post-onset %.4f -> tail "
               "frozen %.4f vs refreshed %.4f (recovery %.2f)\n",
               pre, post_onset, frozen_tail, post_refresh, recovery);
  std::fprintf(stderr,
               "[drift] refresh cost: retrain %.0f ms (%llu base + %llu "
               "window rows), swap wait %.1f ms, barriers %.1f ms\n",
               run_adaptive.timing.retrain_ms,
               static_cast<unsigned long long>(c.retrain_base_rows),
               static_cast<unsigned long long>(c.retrain_window_rows),
               run_adaptive.timing.swap_wait_ms,
               run_adaptive.timing.barrier_ms);

  if (verdict_path != nullptr)
    dump_verdicts(run_adaptive.verdicts, verdict_path);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[drift] cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"drift\",\n"
               "  \"threads\": %zu,\n"
               "  \"backend\": \"%s\",\n"
               "  \"hosts\": %zu,\n"
               "  \"ticks\": %u,\n"
               "  \"setup_ms\": %.0f,\n"
               "  \"campaign_onset\": %u,\n"
               "  \"campaign_hosts\": %llu,\n"
               "  \"malware_hosts\": %llu,\n",
               support::resolve_threads(exp.threads),
               std::string(ml::backend_kind_name(ml::infer_backend_kind()))
                   .c_str(),
               fc.hosts, fc.ticks, setup_ms, onset,
               static_cast<unsigned long long>(c.campaign_hosts),
               static_cast<unsigned long long>(c.malware_hosts));
  std::fprintf(
      f,
      "  \"detection\": {\"checks\": %llu, \"triggers\": %llu, "
      "\"trigger_tick\": %u, \"detection_lag_ticks\": %llu, "
      "\"tripped_shards\": %llu},\n",
      static_cast<unsigned long long>(c.drift_checks),
      static_cast<unsigned long long>(c.drift_triggers), trigger_tick,
      static_cast<unsigned long long>(detection_lag),
      static_cast<unsigned long long>(c.drift_tripped_shards));
  std::fprintf(
      f,
      "  \"refresh\": {\"swapped\": %s, \"swap_tick\": %u, "
      "\"retrain_ms\": %.1f, \"swap_wait_ms\": %.1f, \"barrier_ms\": %.1f, "
      "\"base_rows\": %llu, \"window_rows\": %llu, \"checkpointed\": %s},\n",
      swapped ? "true" : "false", swap_tick, run_adaptive.timing.retrain_ms,
      run_adaptive.timing.swap_wait_ms, run_adaptive.timing.barrier_ms,
      static_cast<unsigned long long>(c.retrain_base_rows),
      static_cast<unsigned long long>(c.retrain_window_rows),
      checkpoint_dir != nullptr ? "true" : "false");
  std::fprintf(f,
               "  \"accuracy\": {\"pre_onset\": %.6f, \"post_onset\": %.6f, "
               "\"post_refresh\": %.6f, \"frozen_tail\": %.6f, "
               "\"recovery_fraction\": %.4f},\n",
               pre, post_onset, post_refresh, frozen_tail, recovery);
  std::fprintf(f,
               "  \"adaptive_verdict_hash\": \"%016llx\",\n"
               "  \"frozen_verdict_hash\": \"%016llx\"\n"
               "}\n",
               static_cast<unsigned long long>(c.verdict_hash),
               static_cast<unsigned long long>(
                   run_frozen.counters.verdict_hash));
  std::fclose(f);

  const bool ok = triggered && swapped;
  std::fprintf(stderr, "[drift] wrote %s (%s)\n", out_path,
               ok ? "trigger + refresh landed"
                  : "TRIGGER OR SWAP MISSING");
  return ok ? 0 : 1;
}

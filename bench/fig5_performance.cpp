// Reproduces paper Figure 5: "Performance results (ACC×AUC) for various ML
// classifiers with varying number of HPCs", plus the paper's headline
// ensemble-improvement call-outs:
//   * SMO: 4/2 HPC + AdaBoost vs the same classifier — +16% / +17%
//   * REPTree: 2HPC-Boosted vs 8HPC general — +11%
//   * JRip: 4HPC-Boosted (+10%) and 4HPC-Bagging (+7%) vs 8HPC general
#include <iostream>
#include <map>

#include "bench_util.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace hmd;
  using EK = ml::EnsembleKind;
  using CK = ml::ClassifierKind;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "fig5");

  // The full 96-cell grid, evaluated concurrently; the call-out section
  // below reuses the same results by coordinates.
  const auto cells = core::full_grid();
  const auto results = core::run_grid(ctx, cells, cfg.threads);
  std::map<std::tuple<CK, EK, std::size_t>, ml::DetectorMetrics> grid;
  for (const auto& cell : results)
    grid[{cell.classifier, cell.ensemble, cell.hpcs}] = cell.metrics;

  TextTable table("Figure 5 — Performance = ACC×AUC (%) vs number of HPCs");
  table.set_header({"Classifier", "Variant", "16HPC", "8HPC", "4HPC",
                    "2HPC"});
  for (std::size_t i = 0; i < results.size(); i += 4) {
    std::vector<std::string> row{
        std::string(ml::classifier_kind_name(results[i].classifier)),
        std::string(ml::ensemble_kind_name(results[i].ensemble))};
    for (std::size_t c = 0; c < 4; ++c)
      row.push_back(benchutil::pct(results[i + c].metrics.performance()));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // The paper's call-outs, measured on our data.
  auto perf = [&](CK k, EK e, std::size_t h) {
    return grid.at({k, e, h}).performance();
  };
  auto gain = [&](double ours, double base) {
    return TextTable::num(100.0 * (ours - base) / base, 1) + "%";
  };

  TextTable callouts("Paper call-outs (relative ACC×AUC improvement)");
  callouts.set_header({"Comparison", "Measured", "Paper"});
  callouts.add_row({"SMO 4HPC-Boosted vs SMO 4HPC",
                    gain(perf(CK::kSmo, EK::kAdaBoost, 4),
                         perf(CK::kSmo, EK::kGeneral, 4)),
                    "+16%"});
  callouts.add_row({"SMO 2HPC-Boosted vs SMO 2HPC",
                    gain(perf(CK::kSmo, EK::kAdaBoost, 2),
                         perf(CK::kSmo, EK::kGeneral, 2)),
                    "+17%"});
  callouts.add_row({"REPTree 2HPC-Boosted vs REPTree 8HPC",
                    gain(perf(CK::kRepTree, EK::kAdaBoost, 2),
                         perf(CK::kRepTree, EK::kGeneral, 8)),
                    "+11%"});
  callouts.add_row({"JRip 4HPC-Boosted vs JRip 8HPC",
                    gain(perf(CK::kJRip, EK::kAdaBoost, 4),
                         perf(CK::kJRip, EK::kGeneral, 8)),
                    "+10%"});
  callouts.add_row({"JRip 4HPC-Bagging vs JRip 8HPC",
                    gain(perf(CK::kJRip, EK::kBagging, 4),
                         perf(CK::kJRip, EK::kGeneral, 8)),
                    "+7%"});
  std::cout << '\n';
  callouts.print(std::cout);
  return 0;
}

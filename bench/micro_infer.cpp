// Inference micro-benchmark over the full classifier × ensemble grid,
// A/B-comparing the flat batched inference engine against the scalar
// reference walk (ml/infer.h) in one process.
//
// For every cell the benchmark trains one detector, scores a stream of
// distinct intervals through both backends, verifies the score vectors are
// bit-identical element by element, and records the per-sample latency of
// each backend.
//
// The timed batch is NOT the test split looped over and over: re-scoring
// the same couple of hundred rows lets the branch predictor memorise every
// data-dependent branch in the scalar walk, which flatters it absurdly —
// run-time detection sees each interval exactly once. Instead the batch is
// tens of thousands of unique rows, each a test-split row under a small
// deterministic multiplicative jitter (so values stay in-distribution),
// scored in one pass per timing rep. Both backends score the identical
// batch, so the bit-identity check is unaffected.
//
// Results land in BENCH_infer.json; the headline number is
// `tree_ensemble_speedup`, the aggregate scalar/flat latency ratio over
// the flattenable tree/rule ensembles ({J48, REPTree, JRip} ×
// {AdaBoost, Bagging}). Any score mismatch anywhere exits 1.
//
// Flags (beyond the shared --quick/--seed/--threads/--backend set):
//   --reps N   timing repetitions per backend, best-of (default 5; 2 in
//              --quick)
//   --hpcs N   feature-projection width to score at (default 8)
//   --out P    JSON output path (default BENCH_infer.json)
//   --only L   comma-separated classifier names (e.g. J48,JRip): bench only
//              those rows of the grid. The aggregate speedup then covers
//              only the tree/rule-ensemble cells actually present.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hmd.h"
#include "support/rng.h"

namespace {

using namespace hmd;

struct Cell {
  ml::ClassifierKind kind;
  ml::EnsembleKind ensemble;
  std::string backend;      ///< engine behind the kFlat request: flat|generic
  double scalar_us = 0.0;   ///< scalar per-sample latency
  double flat_us = 0.0;     ///< flat (or generic) per-sample latency
  bool score_match = true;  ///< element-wise bit-identity of the two runs
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` per-sample latency of scoring the `rows`-row batch `x`
/// (one full pass per rep) through `backend`; the scores stay in `scores`.
double time_backend(const ml::InferenceBackend& backend,
                    std::span<const double> x, std::size_t num_features,
                    std::size_t rows, std::size_t reps,
                    std::vector<double>& scores) {
  scores.assign(rows, 0.0);
  double best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const double t0 = now_ms();
    backend.predict_proba_batch(x, num_features, scores);
    const double ms = now_ms() - t0;
    if (rep == 0 || ms < best) best = ms;
  }
  return rows > 0 ? 1000.0 * best / static_cast<double>(rows) : 0.0;
}

/// `rows` unique in-distribution intervals: test-split rows cycled in a
/// mixed order under ±5% multiplicative jitter. Unique rows keep the
/// scalar walk's branch behaviour honest (nothing to memorise), and the
/// jitter never moves a value far enough to leave the trained split range.
std::vector<double> make_stream(const ml::Dataset& test, std::size_t rows,
                                std::uint64_t seed) {
  const std::size_t nf = test.num_features();
  Rng rng(mix64(seed ^ 0x1f2e3d4c5b6a7988ULL));
  std::vector<double> x(rows * nf);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto base = test.row(rng.below(test.num_rows()));
    for (std::size_t j = 0; j < nf; ++j)
      x[i * nf + j] = base[j] * rng.uniform(0.95, 1.05);
  }
  return x;
}

bool tree_ensemble_cell(const Cell& c) {
  const bool tree = c.kind == ml::ClassifierKind::kJ48 ||
                    c.kind == ml::ClassifierKind::kRepTree ||
                    c.kind == ml::ClassifierKind::kJRip;
  const bool ens = c.ensemble == ml::EnsembleKind::kAdaBoost ||
                   c.ensemble == ml::EnsembleKind::kBagging;
  return tree && ens;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig cfg = benchutil::config_from_args(argc, argv);
  std::size_t reps = 0;
  std::size_t hpcs = 8;
  const char* out_path = "BENCH_infer.json";
  std::string only;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::strtoull(argv[i + 1], nullptr, 10);
    if (std::strcmp(argv[i], "--hpcs") == 0 && i + 1 < argc)
      hpcs = std::strtoull(argv[i + 1], nullptr, 10);
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[i + 1];
    if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc)
      only = argv[i + 1];
  }
  const auto selected = [&only](ml::ClassifierKind kind) {
    if (only.empty()) return true;
    const std::string name(ml::classifier_kind_name(kind));
    std::size_t pos = 0;
    while (pos <= only.size()) {
      std::size_t end = only.find(',', pos);
      if (end == std::string::npos) end = only.size();
      if (only.compare(pos, end - pos, name) == 0) return true;
      pos = end + 1;
    }
    return false;
  };
  if (reps == 0) reps = quick ? 2 : 5;
  if (hpcs == 0) hpcs = 8;

  long long capture_ms = 0;
  const core::ExperimentContext ctx =
      benchutil::prepare(cfg, "micro_infer", &capture_ms);
  const ml::Split& split = ctx.projected_split(hpcs);
  const ml::Dataset& test = split.test;

  // Enough unique rows per timed pass to out-resolve the clock and defeat
  // branch-history memorisation, even on the reduced --quick corpus.
  const std::size_t stream_rows = quick ? 20000 : 200000;
  const std::vector<double> stream =
      make_stream(test, stream_rows, ctx.config.corpus.seed);

  std::vector<Cell> cells;
  bool all_match = true;
  std::vector<double> scalar_scores;
  std::vector<double> flat_scores;
  for (ml::ClassifierKind kind : ml::all_classifier_kinds()) {
    if (!selected(kind)) continue;
    for (ml::EnsembleKind ensemble : ml::all_ensemble_kinds()) {
      Cell cell{kind, ensemble, ""};
      auto detector = ml::make_detector(kind, ensemble, ctx.config.model_seed);
      detector->train(split.train);

      const auto scalar =
          ml::make_backend(*detector, ml::InferBackendKind::kScalar);
      const auto flat =
          ml::make_backend(*detector, ml::InferBackendKind::kFlat);
      cell.backend = flat->name();

      const std::size_t nf = test.num_features();
      cell.scalar_us = time_backend(*scalar, stream, nf, stream_rows, reps,
                                    scalar_scores);
      cell.flat_us =
          time_backend(*flat, stream, nf, stream_rows, reps, flat_scores);
      cell.score_match = scalar_scores == flat_scores;
      all_match = all_match && cell.score_match;

      std::fprintf(stderr,
                   "[micro_infer] %-8s %-8s scalar %8.3f us  %-7s %8.3f us "
                   " (%.2fx)%s\n",
                   std::string(ml::classifier_kind_name(kind)).c_str(),
                   std::string(ml::ensemble_kind_name(ensemble)).c_str(),
                   cell.scalar_us, cell.backend.c_str(), cell.flat_us,
                   cell.flat_us > 0.0 ? cell.scalar_us / cell.flat_us : 0.0,
                   cell.score_match ? "" : "  SCORE MISMATCH");
      cells.push_back(cell);
    }
  }

  double tree_scalar = 0.0, tree_flat = 0.0;
  for (const Cell& c : cells) {
    if (!tree_ensemble_cell(c)) continue;
    tree_scalar += c.scalar_us;
    tree_flat += c.flat_us;
  }
  const double tree_speedup = tree_flat > 0.0 ? tree_scalar / tree_flat : 0.0;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[micro_infer] cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_infer\",\n"
               "  \"capture_ms\": %lld,\n"
               "  \"hpcs\": %zu,\n"
               "  \"reps\": %zu,\n"
               "  \"batch_rows\": %zu,\n"
               "  \"tree_ensemble_speedup\": %.3f,\n"
               "  \"all_scores_match\": %s,\n"
               "  \"cells\": [\n",
               capture_ms, hpcs, reps, stream_rows, tree_speedup,
               all_match ? "true" : "false");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"classifier\": \"%s\", \"ensemble\": \"%s\", "
        "\"backend\": \"%s\", \"scalar_us_per_sample\": %.4f, "
        "\"flat_us_per_sample\": %.4f, \"speedup\": %.3f, "
        "\"predictions_per_sec\": %.1f, \"score_match\": %s}%s\n",
        std::string(ml::classifier_kind_name(c.kind)).c_str(),
        std::string(ml::ensemble_kind_name(c.ensemble)).c_str(),
        c.backend.c_str(), c.scalar_us, c.flat_us,
        c.flat_us > 0.0 ? c.scalar_us / c.flat_us : 0.0,
        c.flat_us > 0.0 ? 1e6 / c.flat_us : 0.0,
        c.score_match ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr,
               "[micro_infer] wrote %s (%zu cells, tree-ensemble inference "
               "speedup %.2fx, scores %s)\n",
               out_path, cells.size(), tree_speedup,
               all_match ? "bit-identical" : "MISMATCHED");
  return all_match ? 0 : 1;
}

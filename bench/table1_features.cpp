// Reproduces paper Table 1: "Hardware performance counters in order of
// importance" — the 16 most important of the 44 captured events, ranked by
// Correlation Attribute Evaluation on the training applications.
//
// The paper's published order is printed next to our measured order so the
// overlap is auditable. Absolute order depends on the (simulated) workload
// population; what must hold is the *composition*: branch, TLB, and cache
// events dominating, and the one counter OneR picks being at/near the top.
#include <array>
#include <iostream>

#include "bench_util.h"
#include "ml/oner.h"
#include "support/table.h"

namespace {

constexpr std::array<const char*, 16> kPaperTable1 = {
    "branch_instructions", "branch_loads",          "iTLB_load_misses",
    "dTLB_load_misses",    "dTLB_store_misses",     "L1_dcache_stores",
    "cache_misses",        "node_loads",            "dTLB_stores",
    "iTLB_loads",          "L1_icache_load_misses", "branch_load_misses",
    "branch_misses",       "LLC_store_misses",      "node_stores",
    "L1_dcache_load_misses",
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hmd;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "table1");

  TextTable table(
      "Table 1 — HPCs in order of importance (CorrelationAttributeEval)");
  table.set_header({"Rank", "Measured event", "|r|", "Paper Table 1 event",
                    "In paper's 16?"});

  auto in_paper16 = [&](const std::string& name) {
    for (const char* p : kPaperTable1)
      if (name == p) return true;
    return false;
  };

  std::size_t overlap = 0;
  for (std::size_t i = 0; i < 16 && i < ctx.ranking.size(); ++i) {
    const auto& fs = ctx.ranking[i];
    const std::string name = ctx.full.feature_name(fs.feature);
    const bool hit = in_paper16(name);
    overlap += hit ? 1 : 0;
    table.add_row({std::to_string(i + 1), name, TextTable::num(fs.score, 3),
                   kPaperTable1[i], hit ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nOverlap with the paper's 16: " << overlap
            << "/16 events.\n";

  // The paper notes OneR always selects branch_instructions; report which
  // counter our OneR selects from the full 44-event training set.
  ml::OneR oner;
  oner.train(ctx.split.train);
  std::cout << "OneR's single chosen counter: "
            << ctx.full.feature_name(oner.chosen_feature()) << "\n";
  return 0;
}

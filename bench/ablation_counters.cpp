// Ablation (beyond the paper's tables): the cost of the capture protocol as
// a function of PMU width, and what the protocol does to detector quality.
//
// The paper's motivation rests on two facts this bench quantifies:
//   1. capturing 44 events with a W-counter PMU needs ceil(37/W) separate
//      executions per application (7 of the 44 are software events);
//   2. run-time detection can only use W concurrently-countable events, so
//      the detector quality attainable *live* is the W-HPC column.
// It also compares the three capture protocols (multi-run, multiplex,
// oracle) at fixed W=4 for a Bagging-J48 detector.
#include <iostream>

#include "bench_util.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace hmd;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "ablation_counters");

  // Part 1: protocol cost + live-detector quality vs PMU width.
  TextTable width_table(
      "Ablation A — PMU width: capture cost and live-detector quality");
  width_table.set_header({"PMU width", "Runs per app (44 events)",
                          "J48 acc%", "J48-Bagging acc%"});
  std::vector<sim::Event> all(sim::all_events().begin(),
                              sim::all_events().end());
  constexpr std::uint32_t kWidths[] = {1, 2, 4, 6, 8};
  std::vector<core::GridCell> cells;
  for (std::uint32_t width : kWidths) {
    cells.push_back({ml::ClassifierKind::kJ48, ml::EnsembleKind::kGeneral,
                     width});
    cells.push_back({ml::ClassifierKind::kJ48, ml::EnsembleKind::kBagging,
                     width});
  }
  const auto results = core::run_grid(ctx, cells, cfg.threads);
  for (std::size_t w = 0; w < std::size(kWidths); ++w) {
    const auto batches = hpc::schedule_batches(all, kWidths[w]);
    width_table.add_row({std::to_string(kWidths[w]),
                         std::to_string(batches.size()),
                         benchutil::pct(results[2 * w].metrics.accuracy),
                         benchutil::pct(results[2 * w + 1].metrics.accuracy)});
  }
  width_table.print(std::cout);

  // Part 2: capture protocol comparison at the Nehalem width of 4.
  TextTable proto_table(
      "\nAblation B — capture protocol (4-counter PMU, Bagging-J48 @4HPC)");
  proto_table.set_header(
      {"Protocol", "Runs per app", "Samples", "Accuracy%", "AUC"});
  for (const auto protocol :
       {hpc::CaptureProtocol::kMultiRun, hpc::CaptureProtocol::kMultiplex,
        hpc::CaptureProtocol::kOracle}) {
    core::ExperimentConfig pcfg = cfg;
    pcfg.capture.protocol = protocol;
    // Stochastic fault injection models the multi-run protocol only; the
    // protocol comparison always runs clean (ablation_faults owns faults).
    pcfg.capture.faults = {};
    const auto pctx = core::prepare_experiment(pcfg);
    const auto cell = core::run_cell(pctx, ml::ClassifierKind::kJ48,
                                     ml::EnsembleKind::kBagging, 4);
    const double runs_per_app =
        static_cast<double>(pctx.capture.total_runs) /
        static_cast<double>(pctx.capture.app_names.size());
    proto_table.add_row({std::string(hpc::capture_protocol_name(protocol)),
                         TextTable::num(runs_per_app, 0),
                         std::to_string(pctx.full.num_rows()),
                         benchutil::pct(cell.metrics.accuracy),
                         TextTable::num(cell.metrics.auc, 3)});
    std::fprintf(stderr, "[ablation_counters] protocol %s done\n",
                 std::string(hpc::capture_protocol_name(protocol)).c_str());
  }
  proto_table.print(std::cout);
  return 0;
}

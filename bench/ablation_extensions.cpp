// Extension ablations beyond the paper's evaluation:
//   A) RandomForest (Breiman 2001) vs the paper's Boosted/Bagged detectors
//      at 2/4 HPCs — the ensemble later HMD work converged on;
//   B) Platt-calibrated SMO vs raw and Boosted SMO — separating "ensemble
//      effect" from "calibration effect" in the SMO robustness story;
//   C) counter register width: saturating 8..48-bit counters vs detector
//      quality (how cheap can the PMU itself get?);
//   D) mimicry evasion: malware blended toward a benign cover workload,
//      detection rate vs blend factor (the detector's failure mode).
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "ml/calibration.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/smo.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace hmd;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "ablation_extensions");

  // ------------------------------------------------------------------ A --
  TextTable forest_table(
      "Ablation A — RandomForest vs the paper's ensembles");
  forest_table.set_header({"Detector", "HPCs", "Accuracy%", "AUC",
                           "ACCxAUC%"});
  for (std::size_t hpcs : {4u, 2u}) {
    const auto features = ctx.top_features(hpcs);
    const ml::Dataset train = ctx.split.train.select_features(features);
    const ml::Dataset test = ctx.split.test.select_features(features);

    auto add = [&](const char* label, ml::Classifier& clf) {
      clf.train(train);
      const auto m = ml::evaluate_detector(clf, test);
      forest_table.add_row({label, std::to_string(hpcs),
                            benchutil::pct(m.accuracy),
                            TextTable::num(m.auc, 3),
                            benchutil::pct(m.performance())});
    };
    ml::RandomForest forest(30, 0, 7);
    add("RandomForest(30)", forest);
    auto boosted =
        ml::make_detector(ml::ClassifierKind::kJ48, ml::EnsembleKind::kAdaBoost, 7);
    add("Boosted-J48", *boosted);
    auto bagged =
        ml::make_detector(ml::ClassifierKind::kJ48, ml::EnsembleKind::kBagging, 7);
    add("Bagging-J48", *bagged);
    std::fprintf(stderr, "[ablation_extensions] forest %zuHPC done\n", hpcs);
  }
  forest_table.print(std::cout);

  // ------------------------------------------------------------------ B --
  TextTable platt_table("\nAblation B — calibration vs ensembling (SMO @4HPC)");
  platt_table.set_header({"Detector", "Accuracy%", "AUC"});
  {
    const auto features = ctx.top_features(4);
    const ml::Dataset train = ctx.split.train.select_features(features);
    const ml::Dataset test = ctx.split.test.select_features(features);
    auto add = [&](const char* label, ml::Classifier& clf) {
      clf.train(train);
      const auto m = ml::evaluate_detector(clf, test);
      platt_table.add_row({label, benchutil::pct(m.accuracy),
                           TextTable::num(m.auc, 3)});
    };
    ml::Smo raw;
    add("SMO (raw, hard output)", raw);
    ml::PlattScaling platt(std::make_unique<ml::Smo>(), 0.3, 7);
    add("Platt(SMO)", platt);
    auto boosted =
        ml::make_detector(ml::ClassifierKind::kSmo, ml::EnsembleKind::kAdaBoost, 7);
    add("Boosted-SMO", *boosted);
  }
  platt_table.print(std::cout);

  // ------------------------------------------------------------------ C --
  TextTable width_table(
      "\nAblation C — counter register width (Bagging-J48 @4HPC)");
  width_table.set_header({"Counter bits", "Saturation point",
                          "Accuracy%", "AUC"});
  for (std::uint32_t bits : {4u, 6u, 8u, 10u, 12u, 48u}) {
    core::ExperimentConfig wcfg = cfg;
    wcfg.capture.pmu.counter_bits = bits;
    const auto wctx = core::prepare_experiment(wcfg);
    const auto cell = core::run_cell(wctx, ml::ClassifierKind::kJ48,
                                     ml::EnsembleKind::kBagging, 4);
    width_table.add_row(
        {std::to_string(bits),
         std::to_string((std::uint64_t{1} << std::min(bits, 63u)) - 1),
         benchutil::pct(cell.metrics.accuracy),
         TextTable::num(cell.metrics.auc, 3)});
    std::fprintf(stderr, "[ablation_extensions] %u-bit counters done\n",
                 bits);
  }
  width_table.print(std::cout);

  // ------------------------------------------------------------------ D --
  TextTable evasion_table(
      "\nAblation D — mimicry evasion (Bagging-J48 @4HPC, ransomware "
      "blended toward cjpeg)");
  evasion_table.set_header({"Blend lambda", "Malicious work retained",
                            "Detection rate% (of intervals)"});
  {
    const auto features = ctx.top_features(4);
    std::vector<sim::Event> events;
    for (std::size_t f : features)
      events.push_back(
          sim::event_from_name(ctx.full.feature_name(f)));
    // Deployment training: the 4 events captured together in one run per
    // app — the distribution the online readout produces (see
    // core::train_deployment_model).
    const auto corpus = sim::build_corpus(cfg.corpus);
    auto detector = core::train_deployment_model(
        corpus, events, ml::ClassifierKind::kJ48,
        ml::EnsembleKind::kBagging, cfg.capture, 7);

    const auto cover = sim::make_benign(3 /*cjpeg*/, 50, 777, 24);
    for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      // Average over several unseen ransomware variants.
      double flagged = 0.0, total = 0.0;
      for (std::uint32_t v = 60; v < 64; ++v) {
        const auto mal = sim::blend_toward(
            sim::make_malware(4 /*ransomware*/, v, 777, 24), cover, lambda);
        sim::Machine machine;
        hpc::Pmu pmu(cfg.capture.pmu);
        pmu.program(events);
        machine.start_run(mal, 0);
        while (machine.running()) {
          pmu.observe(machine.next_interval());
          const auto values = pmu.sample_and_clear();
          std::vector<double> x(values.begin(), values.end());
          flagged += detector->predict(x);
          total += 1.0;
        }
      }
      evasion_table.add_row(
          {TextTable::num(lambda, 2),
           benchutil::pct(1.0 - lambda, 0) /* work scales with 1-lambda */,
           benchutil::pct(flagged / total)});
    }
  }
  evasion_table.print(std::cout);
  std::cout << "\nThe evasion trade-off: approaching full mimicry "
               "(lambda=1) defeats the detector\nbut also removes the "
               "malicious behaviour itself — detection pressure converts\n"
               "into a throughput tax on the attacker.\n";
  return 0;
}

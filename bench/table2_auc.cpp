// Reproduces paper Table 2: "AUC values for various general and ensemble
// detectors" — classification robustness (area under the ROC curve) per
// classifier for 16/8/4 HPC general models and the 4/2 HPC ensembles.
#include <iostream>

#include "bench_util.h"
#include "support/table.h"

namespace {

// The paper's Table 2, for side-by-side comparison in the output.
struct PaperRow {
  const char* name;
  double v[8];  // 16, 8, 4, 4B, 4Bag, 2, 2B, 2Bag
};
constexpr PaperRow kPaper[] = {
    {"BayesNet", {0.92, 0.92, 0.92, 0.92, 0.94, 0.92, 0.87, 0.93}},
    {"J48", {0.88, 0.88, 0.81, 0.94, 0.85, 0.81, 0.92, 0.82}},
    {"JRip", {0.86, 0.86, 0.81, 0.88, 0.93, 0.81, 0.93, 0.88}},
    {"MLP", {0.90, 0.90, 0.89, 0.92, 0.86, 0.90, 0.93, 0.87}},
    {"OneR", {0.81, 0.81, 0.81, 0.90, 0.87, 0.81, 0.90, 0.87}},
    {"REPTree", {0.85, 0.85, 0.81, 0.85, 0.88, 0.81, 0.92, 0.91}},
    {"SGD", {0.74, 0.74, 0.72, 0.89, 0.74, 0.71, 0.71, 0.71}},
    {"SMO", {0.65, 0.65, 0.65, 0.88, 0.85, 0.68, 0.89, 0.83}},
};

const PaperRow* paper_row(std::string_view name) {
  for (const auto& row : kPaper)
    if (name == row.name) return &row;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmd;
  using EK = ml::EnsembleKind;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "table2");

  struct Col {
    const char* label;
    std::size_t hpcs;
    EK ens;
  };
  const Col cols[] = {
      {"16HPC", 16, EK::kGeneral},   {"8HPC", 8, EK::kGeneral},
      {"4HPC", 4, EK::kGeneral},     {"4HPC-Boost", 4, EK::kAdaBoost},
      {"4HPC-Bag", 4, EK::kBagging}, {"2HPC", 2, EK::kGeneral},
      {"2HPC-Boost", 2, EK::kAdaBoost}, {"2HPC-Bag", 2, EK::kBagging},
  };

  TextTable table("Table 2 — AUC (robustness); 'measured (paper)'");
  std::vector<std::string> header{"Classifier"};
  for (const Col& c : cols) header.emplace_back(c.label);
  table.set_header(std::move(header));

  // One grid cell per (classifier, column), evaluated concurrently with
  // results in input order: classifier-major, columns inner.
  std::vector<core::GridCell> cells;
  for (ml::ClassifierKind kind : ml::all_classifier_kinds())
    for (const Col& c : cols) cells.push_back({kind, c.ens, c.hpcs});
  const auto results = core::run_grid(ctx, cells, cfg.threads);

  std::size_t i = 0;
  for (ml::ClassifierKind kind : ml::all_classifier_kinds()) {
    const std::string name(ml::classifier_kind_name(kind));
    const PaperRow* paper = paper_row(name);
    std::vector<std::string> row{name};
    for (std::size_t c = 0; c < std::size(cols); ++c, ++i) {
      std::string text = TextTable::num(results[i].metrics.auc, 2);
      if (paper != nullptr)
        text += " (" + TextTable::num(paper->v[c], 2) + ")";
      row.push_back(std::move(text));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}

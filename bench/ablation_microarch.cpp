// Microarchitecture-sensitivity ablation: does the detector depend on the
// exact core it was profiled on?
//
//   A) capture the corpus on machines with different branch predictors and
//      cache replacement policies; train+test within each machine —
//      detection quality should be broadly stable (the class signal is
//      behavioural, not an artifact of one predictor);
//   B) cross-machine transfer: train on the Nehalem-like default machine,
//      deploy against data captured on a different core — the realistic
//      "model trained in the lab, deployed on another SKU" scenario.
#include <iostream>

#include "bench_util.h"
#include "ml/metrics.h"
#include "support/table.h"

namespace {

using namespace hmd;

core::ExperimentContext capture_on(core::ExperimentConfig cfg,
                                   sim::BranchPredictorKind pk,
                                   sim::ReplacementPolicy rp) {
  cfg.capture.machine.branch.kind = pk;
  cfg.capture.machine.l1d.policy = rp;
  cfg.capture.machine.l1i.policy = rp;
  cfg.capture.machine.llc.policy = rp;
  return core::prepare_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = benchutil::config_from_args(argc, argv);

  struct MachineCase {
    const char* label;
    sim::BranchPredictorKind pk;
    sim::ReplacementPolicy rp;
  };
  const MachineCase machines[] = {
      {"gshare + LRU (default)", sim::BranchPredictorKind::kGshare,
       sim::ReplacementPolicy::kLru},
      {"bimodal + LRU", sim::BranchPredictorKind::kBimodal,
       sim::ReplacementPolicy::kLru},
      {"tournament + tree-PLRU", sim::BranchPredictorKind::kTournament,
       sim::ReplacementPolicy::kTreePlru},
      {"gshare + random", sim::BranchPredictorKind::kGshare,
       sim::ReplacementPolicy::kRandom},
  };

  TextTable within("Ablation A — within-machine detection (Bagging-J48 @4HPC)");
  within.set_header({"Machine", "Accuracy%", "AUC"});

  std::vector<core::ExperimentContext> contexts;
  for (const auto& mc : machines) {
    contexts.push_back(capture_on(cfg, mc.pk, mc.rp));
    const auto cell = core::run_cell(contexts.back(),
                                     ml::ClassifierKind::kJ48,
                                     ml::EnsembleKind::kBagging, 4);
    within.add_row({mc.label, benchutil::pct(cell.metrics.accuracy),
                    TextTable::num(cell.metrics.auc, 3)});
    std::fprintf(stderr, "[ablation_microarch] %s done\n", mc.label);
  }
  within.print(std::cout);

  // Cross-machine transfer: model fit on machine 0's training split,
  // evaluated on each other machine's *test* split. Feature selection must
  // come from the training machine (deployment cannot re-rank).
  TextTable cross(
      "\nAblation B — cross-machine transfer (train on default machine)");
  cross.set_header({"Deployed on", "Accuracy%", "AUC"});
  const auto& home = contexts[0];
  const auto features = home.top_features(4);
  auto detector = ml::make_detector(ml::ClassifierKind::kJ48,
                                    ml::EnsembleKind::kBagging, 7);
  detector->train(home.split.train.select_features(features));
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const auto test = contexts[i].split.test.select_features(features);
    const auto m = ml::evaluate_detector(*detector, test);
    cross.add_row({machines[i].label, benchutil::pct(m.accuracy),
                   TextTable::num(m.auc, 3)});
  }
  cross.print(std::cout);
  std::cout << "\nShape check: within-machine quality is stable across "
               "microarchitectures, and\ncross-machine deployment loses "
               "only a few points — the detector keys on\nworkload "
               "behaviour, not on one predictor's quirks.\n";
  return 0;
}

// Reproduces paper Table 3: "Hardware implementation results" — FPGA
// latency (clock cycles @10 ns) and area (% of an OpenSPARC core) for each
// classifier as 8HPC-General, 4HPC-Boosted, and 2HPC-Boosted detectors.
//
// The paper synthesises with Vivado HLS on a Virtex-7; we apply the
// structural cost model in src/hw to the *actually trained* models from the
// same experiment grid (see DESIGN.md for the substitution rationale).
#include <iostream>

#include "bench_util.h"
#include "hw/resources.h"
#include "support/table.h"

namespace {

struct PaperRow {
  const char* name;
  double lat8, area8, lat4b, area4b, lat2b, area2b;
};
constexpr PaperRow kPaper[] = {
    {"BayesNet", 14, 11.5, 56, 13.6, 32, 10.9},
    {"J48", 9, 3.0, 67, 4.3, 35, 4.1},
    {"SGD", 34, 4.3, 87, 6.3, 51, 5.1},
    {"JRip", 4, 2.5, 56, 5.3, 37, 8.2},
    {"MLP", 302, 61.1, 591, 61.7, 201, 42.2},
    {"OneR", 1, 2.1, 70, 5.1, 38, 5.0},
    {"REPTree", 39, 2.9, 60, 3.9, 30, 3.7},
    {"SMO", 34, 4.3, 87, 6.3, 51, 5.1},
};

const PaperRow* paper_row(std::string_view name) {
  for (const auto& row : kPaper)
    if (name == row.name) return &row;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmd;
  using EK = ml::EnsembleKind;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "table3");

  TextTable table(
      "Table 3 — Hardware implementation; cells are 'measured (paper)'");
  table.set_header({"Classifier", "8HPC-Gen lat", "8HPC-Gen area%",
                    "4HPC-Boost lat", "4HPC-Boost area%", "2HPC-Boost lat",
                    "2HPC-Boost area%"});

  const hw::FabricParams fabric;
  const hw::ReferenceCore core;

  struct Cfg {
    EK ens;
    std::size_t hpcs;
  };
  constexpr Cfg cols[] = {{EK::kGeneral, 8}, {EK::kAdaBoost, 4},
                          {EK::kAdaBoost, 2}};
  std::vector<core::GridCell> cells;
  for (ml::ClassifierKind kind : ml::all_classifier_kinds())
    for (const Cfg& c : cols) cells.push_back({kind, c.ens, c.hpcs});
  const auto results = core::run_grid(ctx, cells, cfg.threads);

  std::size_t i = 0;
  for (ml::ClassifierKind kind : ml::all_classifier_kinds()) {
    const std::string name(ml::classifier_kind_name(kind));
    const PaperRow* paper = paper_row(name);

    std::vector<std::string> row{name};
    for (std::size_t c = 0; c < std::size(cols); ++c, ++i) {
      const auto est = hw::estimate_hardware(results[i].complexity, fabric);
      const double paper_lat =
          paper ? (c == 0 ? paper->lat8 : c == 1 ? paper->lat4b : paper->lat2b)
                : 0.0;
      const double paper_area =
          paper ? (c == 0 ? paper->area8
                          : c == 1 ? paper->area4b : paper->area2b)
                : 0.0;
      row.push_back(TextTable::num(est.latency_cycles, 0) + " (" +
                    TextTable::num(paper_lat, 0) + ")");
      row.push_back(TextTable::num(est.area_percent(core, fabric), 1) + " (" +
                    TextTable::num(paper_area, 1) + ")");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout <<
      "\nPaper shape check: MLP dominates both latency and area; trees and "
      "rule\nlearners are tiny; boosted variants trade latency for the "
      "ability to run\nwith 2-4 counters at small (or negative, for MLP) "
      "area overhead.\n";
  return 0;
}

// Ablation (beyond the paper's tables): ensemble design choices.
//   A) ensemble size — accuracy/AUC of AdaBoost and Bagging over J48 @2HPC
//      as the member count grows (the paper fixes 10, WEKA's default);
//   B) BayesNet structure — naive vs TAN (tree-augmented) at 4 HPCs;
//   C) AdaBoost reweighting vs resampling (WEKA -Q) for REPTree @2HPC.
#include <iostream>

#include "bench_util.h"
#include "ml/adaboost.h"
#include "ml/bagging.h"
#include "ml/bayesnet.h"
#include "ml/metrics.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace hmd;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "ablation_ensemble");

  // The 2- and 4-HPC projections come from the context's shared cache —
  // the same materialisation the grid benches use.
  const ml::Dataset& train2 = ctx.projected_split(2).train;
  const ml::Dataset& test2 = ctx.projected_split(2).test;

  TextTable size_table("Ablation A — ensemble size (J48 @2HPC)");
  size_table.set_header({"Members", "AdaBoost acc%", "AdaBoost AUC",
                         "Bagging acc%", "Bagging AUC"});
  // Each member count trains its own ensembles from seed 7 — independent
  // work units, evaluated concurrently with ordered results.
  constexpr std::size_t kMembers[] = {1, 2, 5, 10, 20, 40};
  struct SizePoint {
    ml::DetectorMetrics boost, bag;
  };
  support::ThreadPool pool(cfg.threads);
  const auto size_points =
      pool.parallel_map(std::size(kMembers), [&](std::size_t i) {
        ml::AdaBoostM1 boost(ml::make_classifier(ml::ClassifierKind::kJ48),
                             kMembers[i], /*seed=*/7);
        boost.train(train2);
        ml::Bagging bag(ml::make_classifier(ml::ClassifierKind::kJ48),
                        kMembers[i], /*seed=*/7);
        bag.train(train2);
        return SizePoint{ml::evaluate_detector(boost, test2),
                         ml::evaluate_detector(bag, test2)};
      });
  for (std::size_t i = 0; i < std::size(kMembers); ++i) {
    size_table.add_row({std::to_string(kMembers[i]),
                        benchutil::pct(size_points[i].boost.accuracy),
                        TextTable::num(size_points[i].boost.auc, 3),
                        benchutil::pct(size_points[i].bag.accuracy),
                        TextTable::num(size_points[i].bag.auc, 3)});
  }
  size_table.print(std::cout);

  const ml::Dataset& train4 = ctx.projected_split(4).train;
  const ml::Dataset& test4 = ctx.projected_split(4).test;

  TextTable bn_table("\nAblation B — BayesNet structure (@4HPC)");
  bn_table.set_header({"Structure", "Accuracy%", "AUC"});
  for (const auto structure :
       {ml::BayesNet::Structure::kNaive, ml::BayesNet::Structure::kTan}) {
    ml::BayesNet bn(structure);
    bn.train(train4);
    const auto m = ml::evaluate_detector(bn, test4);
    bn_table.add_row(
        {structure == ml::BayesNet::Structure::kNaive ? "naive" : "TAN",
         benchutil::pct(m.accuracy), TextTable::num(m.auc, 3)});
  }
  bn_table.print(std::cout);

  TextTable rs_table(
      "\nAblation C — AdaBoost reweighting vs resampling (REPTree @2HPC)");
  rs_table.set_header({"Mode", "Accuracy%", "AUC", "Members trained"});
  for (const bool resample : {false, true}) {
    ml::AdaBoostM1 boost(ml::make_classifier(ml::ClassifierKind::kRepTree),
                         /*iterations=*/10, /*seed=*/7, resample);
    boost.train(train2);
    const auto m = ml::evaluate_detector(boost, test2);
    rs_table.add_row({resample ? "resampling (-Q)" : "reweighting",
                      benchutil::pct(m.accuracy), TextTable::num(m.auc, 3),
                      std::to_string(boost.num_members())});
  }
  rs_table.print(std::cout);
  return 0;
}

// Ablation (beyond the paper's tables): ensemble design choices.
//   A) ensemble size — accuracy/AUC of AdaBoost and Bagging over J48 @2HPC
//      as the member count grows (the paper fixes 10, WEKA's default);
//   B) BayesNet structure — naive vs TAN (tree-augmented) at 4 HPCs;
//   C) AdaBoost reweighting vs resampling (WEKA -Q) for REPTree @2HPC.
#include <iostream>

#include "bench_util.h"
#include "ml/adaboost.h"
#include "ml/bagging.h"
#include "ml/bayesnet.h"
#include "ml/metrics.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace hmd;
  const auto cfg = benchutil::config_from_args(argc, argv);
  const auto ctx = benchutil::prepare(cfg, "ablation_ensemble");

  const auto features2 = ctx.top_features(2);
  const ml::Dataset train2 = ctx.split.train.select_features(features2);
  const ml::Dataset test2 = ctx.split.test.select_features(features2);

  TextTable size_table("Ablation A — ensemble size (J48 @2HPC)");
  size_table.set_header({"Members", "AdaBoost acc%", "AdaBoost AUC",
                         "Bagging acc%", "Bagging AUC"});
  for (std::size_t members : {1u, 2u, 5u, 10u, 20u, 40u}) {
    ml::AdaBoostM1 boost(ml::make_classifier(ml::ClassifierKind::kJ48),
                         members, /*seed=*/7);
    boost.train(train2);
    const auto bm = ml::evaluate_detector(boost, test2);

    ml::Bagging bag(ml::make_classifier(ml::ClassifierKind::kJ48), members,
                    /*seed=*/7);
    bag.train(train2);
    const auto gm = ml::evaluate_detector(bag, test2);

    size_table.add_row({std::to_string(members), benchutil::pct(bm.accuracy),
                        TextTable::num(bm.auc, 3),
                        benchutil::pct(gm.accuracy),
                        TextTable::num(gm.auc, 3)});
    std::fprintf(stderr, "[ablation_ensemble] %zu members done\n", members);
  }
  size_table.print(std::cout);

  const auto features4 = ctx.top_features(4);
  const ml::Dataset train4 = ctx.split.train.select_features(features4);
  const ml::Dataset test4 = ctx.split.test.select_features(features4);

  TextTable bn_table("\nAblation B — BayesNet structure (@4HPC)");
  bn_table.set_header({"Structure", "Accuracy%", "AUC"});
  for (const auto structure :
       {ml::BayesNet::Structure::kNaive, ml::BayesNet::Structure::kTan}) {
    ml::BayesNet bn(structure);
    bn.train(train4);
    const auto m = ml::evaluate_detector(bn, test4);
    bn_table.add_row(
        {structure == ml::BayesNet::Structure::kNaive ? "naive" : "TAN",
         benchutil::pct(m.accuracy), TextTable::num(m.auc, 3)});
  }
  bn_table.print(std::cout);

  TextTable rs_table(
      "\nAblation C — AdaBoost reweighting vs resampling (REPTree @2HPC)");
  rs_table.set_header({"Mode", "Accuracy%", "AUC", "Members trained"});
  for (const bool resample : {false, true}) {
    ml::AdaBoostM1 boost(ml::make_classifier(ml::ClassifierKind::kRepTree),
                         /*iterations=*/10, /*seed=*/7, resample);
    boost.train(train2);
    const auto m = ml::evaluate_detector(boost, test2);
    rs_table.add_row({resample ? "resampling (-Q)" : "reweighting",
                      benchutil::pct(m.accuracy), TextTable::num(m.auc, 3),
                      std::to_string(boost.num_members())});
  }
  rs_table.print(std::cout);
  return 0;
}

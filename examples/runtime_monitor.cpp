// Run-time monitoring: deploy a trained low-HPC detector against live
// applications it has never seen, the scenario the paper's title is about.
//
// A 4-HPC Bagging-JRip detector is trained offline, then attached to a PMU
// programmed with exactly its 4 events — they fit the 4 counter registers,
// so NO re-runs are needed at detection time. Two fresh applications (one
// benign, one ransomware) are executed under the monitor and the verdict
// timeline (per-10ms score, EWMA, alarm state) is printed.
//
// Build & run:  ./build/examples/runtime_monitor
#include <cstdio>
#include <memory>

#include "core/hmd.h"

namespace {

using namespace hmd;

void run_and_print(const char* title, const sim::AppProfile& app,
                   core::OnlineDetector& detector) {
  std::printf("\n--- %s (%s, truth: %s) ---\n", title, app.name.c_str(),
              app.is_malware ? "MALWARE" : "benign");
  detector.reset();
  const auto timeline = core::monitor_application(app, detector);
  std::size_t first_alarm = timeline.size();
  for (const auto& v : timeline) {
    std::printf("t=%3zums  score=%.2f  ewma=%.2f  %s\n", v.interval * 10,
                v.score, v.ewma, v.alarm ? "ALARM" : "");
    if (v.alarm && first_alarm == timeline.size()) first_alarm = v.interval;
  }
  if (first_alarm < timeline.size())
    std::printf("=> alarm raised after %zu ms\n", first_alarm * 10);
  else
    std::printf("=> no alarm\n");
}

}  // namespace

int main() {
  // Offline phase: capture a training corpus and fit the detector.
  core::ExperimentConfig cfg;
  cfg.corpus.benign_per_template = 2;
  cfg.corpus.malware_per_template = 2;
  cfg.corpus.intervals_per_app = 12;
  const core::ExperimentContext ctx = core::prepare_experiment(cfg);

  // Feature selection needs the 44-event study capture; the deployed model
  // is then retrained on data captured exactly as it will be read at run
  // time (its 4 events together, one run per app) — see
  // core::train_deployment_model for why this matters.
  const auto features = ctx.top_features(4);
  std::vector<sim::Event> events;
  for (std::size_t f : features)
    events.push_back(sim::event_from_name(ctx.full.feature_name(f)));
  sim::CorpusConfig deploy_corpus = cfg.corpus;
  deploy_corpus.benign_per_template = 6;
  deploy_corpus.malware_per_template = 6;
  std::shared_ptr<ml::Classifier> model = core::train_deployment_model(
      sim::build_corpus(deploy_corpus), events, ml::ClassifierKind::kJRip,
      ml::EnsembleKind::kBagging, cfg.capture, /*seed=*/7);
  std::printf("monitoring events:");
  for (sim::Event e : events)
    std::printf(" %s", std::string(sim::event_name(e)).c_str());
  std::printf("  (fits the 4 counter registers)\n");

  core::OnlineDetector detector(model, events);

  // Online phase: unseen variants (variant index 9 was never captured).
  const auto benign = sim::make_benign(3 /*cjpeg*/, 9, 999, 16);
  const auto malware = sim::make_malware(4 /*ransomware*/, 9, 999, 16);
  run_and_print("benign workload", benign, detector);
  run_and_print("ransomware", malware, detector);
  return 0;
}

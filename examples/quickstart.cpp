// Quickstart: the whole pipeline in ~40 lines.
//
//   1. Build a small labelled application corpus (simulated substrate).
//   2. Capture the 44 perf events with the 4-counter PMU (11-batch
//      multi-run protocol — the paper's methodology).
//   3. Reduce features with Correlation Attribute Evaluation.
//   4. Train a 2-HPC Boosted-REPTree detector (the paper's headline
//      configuration) and evaluate accuracy / AUC / ACC×AUC.
//   5. Estimate its FPGA implementation cost.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/hmd.h"

int main() {
  using namespace hmd;

  // 1+2+3: corpus -> capture -> ranked features (one call).
  core::ExperimentConfig cfg;
  cfg.corpus.benign_per_template = 3;   // small corpus: quickstart speed
  cfg.corpus.malware_per_template = 3;
  cfg.corpus.intervals_per_app = 12;
  const core::ExperimentContext ctx = core::prepare_experiment(cfg);

  std::printf("captured %zu samples from %zu applications (%llu runs)\n",
              ctx.full.num_rows(), ctx.capture.app_names.size(),
              static_cast<unsigned long long>(ctx.capture.total_runs));
  std::printf("top-4 events: ");
  for (const auto& name : ctx.top_feature_names(4))
    std::printf("%s ", name.c_str());
  std::printf("\n\n");

  // 4: train + evaluate the paper's headline detector.
  const core::CellResult cell =
      core::run_cell(ctx, ml::ClassifierKind::kRepTree,
                     ml::EnsembleKind::kAdaBoost, /*hpcs=*/2);
  std::printf("2HPC Boosted-REPTree:  accuracy %.1f%%  AUC %.3f  "
              "ACCxAUC %.1f%%\n",
              100.0 * cell.metrics.accuracy, cell.metrics.auc,
              100.0 * cell.metrics.performance());

  // 5: what would this detector cost on a Virtex-7 next to the core?
  const hw::ResourceEstimate est = hw::estimate_hardware(cell.complexity);
  std::printf("hardware estimate:     %.0f cycles @10ns  (%.0f ns),  "
              "area %.1f%% of an OpenSPARC core\n",
              est.latency_cycles, est.latency_ns(), est.area_percent());
  return 0;
}

// Counter-budget explorer: the architectural question the paper ends on —
// "how many HPCs should a future core implement for malware detection?"
//
// For a chosen classifier (argv[1], default REPTree) this sweeps the
// counter budget 1..8 and prints, per budget: detection quality of the
// general / boosted / bagged detector plus the estimated silicon cost, so
// the quality-per-area trade-off is visible in one table.
//
// Build & run:  ./build/examples/counter_budget_explorer [classifier]
#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/hmd.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace hmd;

  ml::ClassifierKind kind = ml::ClassifierKind::kRepTree;
  if (argc > 1) {
    bool found = false;
    for (ml::ClassifierKind k : ml::all_classifier_kinds()) {
      if (ml::classifier_kind_name(k) == std::string_view(argv[1])) {
        kind = k;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "unknown classifier '%s' — use one of: BayesNet J48 JRip "
                   "MLP OneR REPTree SGD SMO\n",
                   argv[1]);
      return 1;
    }
  }

  core::ExperimentConfig cfg;
  cfg.corpus.benign_per_template = 2;
  cfg.corpus.malware_per_template = 3;
  cfg.corpus.intervals_per_app = 14;
  const core::ExperimentContext ctx = core::prepare_experiment(cfg);

  TextTable table(std::string("Counter budget sweep — ") +
                  std::string(ml::classifier_kind_name(kind)));
  table.set_header({"HPCs", "General acc%", "Boosted acc%", "Bagging acc%",
                    "Boosted AUC", "Boosted area%", "Boosted cycles"});
  for (std::size_t hpcs = 1; hpcs <= 8; ++hpcs) {
    const auto general =
        core::run_cell(ctx, kind, ml::EnsembleKind::kGeneral, hpcs);
    const auto boosted =
        core::run_cell(ctx, kind, ml::EnsembleKind::kAdaBoost, hpcs);
    const auto bagged =
        core::run_cell(ctx, kind, ml::EnsembleKind::kBagging, hpcs);
    const auto est = hw::estimate_hardware(boosted.complexity);
    table.add_row({std::to_string(hpcs),
                   TextTable::num(100.0 * general.metrics.accuracy, 1),
                   TextTable::num(100.0 * boosted.metrics.accuracy, 1),
                   TextTable::num(100.0 * bagged.metrics.accuracy, 1),
                   TextTable::num(boosted.metrics.auc, 3),
                   TextTable::num(est.area_percent(), 1),
                   TextTable::num(est.latency_cycles, 0)});
    std::fprintf(stderr, "budget %zu done\n", hpcs);
  }
  table.print(std::cout);
  return 0;
}

// hmd_srclint — determinism/concurrency source lint over the repo tree.
//
// Walks src/ bench/ tools/ tests/ examples/ under --root, scanning files
// concurrently through support::parallel_map (the same deterministic
// parallel layer the lint protects), and enforces the determinism contract
// of DESIGN.md §12 as named rules. Writes a LINT_src.json report and exits
// 1 on any unsuppressed violation or malformed suppression, so both the
// ctest and the ci.sh leg fail loudly the moment a banned construct lands.
//
//   ./build/tools/hmd_srclint --root . --out LINT_src.json
//   ./build/tools/hmd_srclint --list-rules
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/srclint.h"
#include "support/parallel.h"

namespace {

int usage(const char* argv0, bool error) {
  std::ostream& os = error ? std::cerr : std::cout;
  os << "usage: " << argv0 << " [options]\n"
     << "  --root DIR    repo root to scan (default: .)\n"
     << "  --out FILE    JSON report path (default: LINT_src.json)\n"
     << "  --threads N   scan workers, 0 = auto (default: 0)\n"
     << "  --list-rules  print the rule table and exit\n"
     << "  --help        this message\n";
  return error ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string out = "LINT_src.json";
  std::size_t threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return usage(argv[0], false);
    } else if (arg == "--list-rules") {
      for (const auto& rule : hmd::analysis::srclint_rules())
        std::cout << rule.id << "\n  bans:      " << rule.bans
                  << "\n  rationale: " << rule.rationale << "\n";
      return 0;
    } else if (arg == "--root") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      root = v;
    } else if (arg == "--out") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      out = v;
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      const auto parsed = hmd::support::parse_thread_count(v);
      if (!parsed && std::strcmp(v, "0") != 0) {
        std::cerr << "error: bad --threads value '" << v << "'\n";
        return 2;
      }
      threads = parsed.value_or(0);
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return usage(argv[0], true);
    }
  }

  hmd::analysis::SrclintReport report;
  try {
    report = hmd::analysis::srclint_scan_tree(root, threads);
  } catch (const std::exception& e) {
    std::cerr << "hmd_srclint: " << e.what() << "\n";
    return 2;
  }

  {
    std::ofstream json(out, std::ios::out | std::ios::trunc);
    if (!json.good()) {
      std::cerr << "hmd_srclint: cannot write report to " << out << "\n";
      return 2;
    }
    json << hmd::analysis::srclint_report_json(report);
  }

  std::size_t suppressed = 0;
  for (const auto& v : report.violations)
    if (v.suppressed) ++suppressed;

  std::cout << "hmd_srclint: scanned " << report.files.size()
            << " files under " << root << " ("
            << hmd::analysis::srclint_rules().size() << " rules)\n";
  for (const auto& v : report.violations) {
    if (v.suppressed) {
      std::cout << "  allowed " << v.file << ":" << v.line << " [" << v.rule
                << "] " << v.reason << "\n";
    } else {
      std::cout << "  FAIL    " << v.file << ":" << v.line << " [" << v.rule
                << "] " << v.snippet << "\n";
    }
  }
  for (const auto& e : report.errors)
    std::cout << "  ERROR   " << e << "\n";
  std::cout << "hmd_srclint: " << report.unsuppressed() << " violations, "
            << suppressed << " suppressed, " << report.errors.size()
            << " suppression errors -> " << out << "\n";
  return report.clean() ? 0 : 1;
}

// hmd_lint — model-integrity static analysis across the experiment grid.
//
// Trains every detector of the paper's evaluation grid (8 classifiers ×
// {General, AdaBoost, Bagging} × {16, 8, 4, 2} HPCs) on the standard
// corpus, then runs the full analysis stack on each:
//
//   * ModelVerifier  — structural well-formedness + complexity drift;
//   * HlsCodeChecker — synthesis-contract lint of the generated C,
//                      fixed-point range check, and a differential check
//                      of the generated decision function against
//                      predict_proba() thresholding on the test split
//                      (HLS-supported families only).
//
// Prints one pass/fail table and exits non-zero if any cell fails, so the
// tool slots directly into CI between training and synthesis/deployment.
//
// When the capture campaign runs with fault injection (--faults), the
// capture health itself is a lint subject: a quarantine or imputation rate
// above budget means the dataset under every downstream verdict is no
// longer trustworthy, so the tool fails before any model-level finding.
//
// Flags: --quick (reduced corpus), --seed N, --fraction-bits B,
//        --max-mismatch R (differential tolerance, default 0.02),
//        --faults P / --fault-seed N (capture fault profile, bench_util),
//        --checkpoint DIR / --resume (capture checkpointing, bench_util;
//        the capture budgets below are enforced on the merged
//        cross-session ledger of a resumed campaign),
//        --max-quarantine R (quarantined-app budget, default 0.05),
//        --max-impute R (imputed-cell budget, default 0.10),
//        --max-train-ms N (soft training-time budget per cell; cells over
//        budget emit a warning, never a failure — 0 disables, the default),
//        --max-predict-us N (soft per-sample inference budget per cell,
//        measured on the flat batched backend over the test split; same
//        advisory warning semantics as --max-train-ms),
//        --max-evasion-rate R (attack-resilience budget: every cell's test
//        split is attacked by the src/attack evasion search under a fixed
//        per-event budget; a cell whose evasion rate exceeds R fails, with
//        the same exit-1 semantics as the capture budgets — 0 disables,
//        the default),
//        --max-p99-us N / --max-shed-rate R (serving budgets: a fixed-seed
//        small fleet is driven through the src/serve pipeline under mild
//        overload; exceeding the end-to-end p99 latency or the shed-rate
//        budget is a hard failure — 0 disables each, the default),
//        --max-drift-lag N / --min-refresh-recovery R (drift budgets: a
//        fixed-seed fleet with a mid-run novel-family campaign runs
//        through the drift-aware serving pipeline twice, frozen and
//        adaptive; a detection lag over N ticks, a missing trigger/swap,
//        or a tail-accuracy recovery fraction below R is a hard failure —
//        0 disables each, the default),
//        --threads N (workers for capture + grid analysis; default
//        HMD_THREADS env, else hardware_concurrency — verdicts are
//        identical for any thread count),
//        --help (usage).
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/hls_checker.h"
#include "analysis/model_verifier.h"
#include "attack/attack_eval.h"
#include "bench_util.h"
#include "core/experiment.h"
#include "hw/hls_codegen.h"
#include "serve/controller.h"
#include "serve/fleet.h"
#include "support/table.h"

namespace {

struct LintArgs {
  hmd::core::ExperimentConfig config;
  int fraction_bits = 8;
  double max_mismatch = 0.02;
  double max_quarantine = 0.05;
  double max_impute = 0.10;
  double max_train_ms = 0.0;    ///< 0 = no training-time budget
  double max_predict_us = 0.0;  ///< 0 = no per-sample inference budget
  double max_evasion = 0.0;     ///< 0 = no attack-resilience budget
  double max_p99_us = 0.0;      ///< 0 = no serving tail-latency budget
  double max_shed_rate = 0.0;   ///< 0 = no serving shed-rate budget
  double max_drift_lag = 0.0;   ///< 0 = no drift detection-lag budget
  double min_recovery = 0.0;    ///< 0 = no refresh-recovery budget
};

void print_help() {
  std::cout <<
      "hmd_lint — model-integrity static analysis across the experiment "
      "grid\n"
      "\n"
      "Trains the full 8 x {General, AdaBoost, Bagging} x {16,8,4,2} grid\n"
      "and lints every cell (structural verification, HLS contract +\n"
      "differential check, optional budgets). Exits 1 if any cell fails or\n"
      "any hard budget is exceeded.\n"
      "\n"
      "Shared flags (bench_util): --quick, --seed N, --threads N,\n"
      "  --faults none|light|heavy, --fault-seed N, --checkpoint DIR,\n"
      "  --resume, --backend scalar|flat\n"
      "\n"
      "Lint flags:\n"
      "  --fraction-bits B     fixed-point fraction bits (default 8)\n"
      "  --max-mismatch R      HLS differential tolerance (default 0.02)\n"
      "  --max-quarantine R    quarantined-app budget (default 0.05); over\n"
      "                        budget is a hard failure\n"
      "  --max-impute R        imputed-cell budget (default 0.10); hard\n"
      "  --max-train-ms N      per-cell training-time budget; advisory\n"
      "                        warning only (0 disables, the default)\n"
      "  --max-predict-us N    per-sample inference budget on the flat\n"
      "                        backend; advisory (0 disables, the default)\n"
      "  --max-evasion-rate R  attack-resilience budget: each cell's test\n"
      "                        split is attacked by the src/attack evasion\n"
      "                        search (abs 8 / rel 5% per-event budget,\n"
      "                        fixed seed); a cell whose evasion rate —\n"
      "                        detected malware rows flipped benign —\n"
      "                        exceeds R fails, with the same exit-1\n"
      "                        semantics as the capture budgets\n"
      "                        (0 disables, the default)\n"
      "  --max-p99-us N        serving tail-latency budget: a fixed-seed\n"
      "                        128-host fleet runs through the src/serve\n"
      "                        pipeline under mild overload (admission at\n"
      "                        90% of offered load, seeded stragglers with\n"
      "                        hedging); an end-to-end per-batch p99 above\n"
      "                        N microseconds is a hard failure\n"
      "                        (0 disables, the default)\n"
      "  --max-shed-rate R     serving shed budget, same scenario: the\n"
      "                        fraction of emitted samples rejected by\n"
      "                        token-bucket admission is deterministic for\n"
      "                        the fixed seed; exceeding R is a hard\n"
      "                        failure (0 disables, the default)\n"
      "  --max-drift-lag N     drift detection-lag budget: a fixed-seed\n"
      "                        fleet with a mid-run novel-family campaign\n"
      "                        runs through the drift-aware pipeline; the\n"
      "                        detector must fire within N ticks of the\n"
      "                        campaign onset, and the refresh must\n"
      "                        hot-swap before end of run — either miss is\n"
      "                        a hard failure (0 disables, the default)\n"
      "  --min-refresh-recovery R  refresh-quality budget, same scenario:\n"
      "                        the refreshed model's tail accuracy must\n"
      "                        capture at least fraction R of the frozen\n"
      "                        model's remaining headroom\n"
      "                        ((refreshed - frozen) / (1 - frozen));\n"
      "                        below R is a hard failure (0 disables,\n"
      "                        the default)\n"
      "  --help                this text\n";
}

LintArgs parse_args(int argc, char** argv) {
  LintArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_help();
      std::exit(0);
    }
  }
  args.config = hmd::benchutil::config_from_args(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fraction-bits") == 0 && i + 1 < argc)
      args.fraction_bits = static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
    if (std::strcmp(argv[i], "--max-mismatch") == 0 && i + 1 < argc)
      args.max_mismatch = std::strtod(argv[i + 1], nullptr);
    if (std::strcmp(argv[i], "--max-quarantine") == 0 && i + 1 < argc)
      args.max_quarantine = std::strtod(argv[i + 1], nullptr);
    if (std::strcmp(argv[i], "--max-impute") == 0 && i + 1 < argc)
      args.max_impute = std::strtod(argv[i + 1], nullptr);
    if (std::strcmp(argv[i], "--max-train-ms") == 0 && i + 1 < argc)
      args.max_train_ms = std::strtod(argv[i + 1], nullptr);
    if (std::strcmp(argv[i], "--max-predict-us") == 0 && i + 1 < argc)
      args.max_predict_us = std::strtod(argv[i + 1], nullptr);
    if (std::strcmp(argv[i], "--max-evasion-rate") == 0 && i + 1 < argc)
      args.max_evasion = std::strtod(argv[i + 1], nullptr);
    if (std::strcmp(argv[i], "--max-p99-us") == 0 && i + 1 < argc)
      args.max_p99_us = std::strtod(argv[i + 1], nullptr);
    if (std::strcmp(argv[i], "--max-shed-rate") == 0 && i + 1 < argc)
      args.max_shed_rate = std::strtod(argv[i + 1], nullptr);
    if (std::strcmp(argv[i], "--max-drift-lag") == 0 && i + 1 < argc)
      args.max_drift_lag = std::strtod(argv[i + 1], nullptr);
    if (std::strcmp(argv[i], "--min-refresh-recovery") == 0 && i + 1 < argc)
      args.min_recovery = std::strtod(argv[i + 1], nullptr);
  }
  return args;
}

/// Drift budgets: a fixed-seed fleet whose workload shifts mid-run (a
/// novel-family campaign plus benign scale drift) runs through the
/// drift-aware serving pipeline twice — frozen (detection only) and
/// adaptive (harvest + retrain + hot-swap). The detection lag, the swap,
/// and the recovery fraction are all deterministic-domain quantities, so
/// these are hard budgets like the capture ones. Returns violations.
std::size_t lint_drift(const LintArgs& args) {
  using namespace hmd;
  if (args.max_drift_lag <= 0.0 && args.min_recovery <= 0.0) return 0;

  serve::FleetConfig fc;
  fc.hosts = 96;
  fc.ticks = 220;
  fc.seed = args.config.corpus.seed;
  fc.train_variants = 2;
  fc.train_intervals = 10;
  fc.threads = args.config.threads;
  fc.drift.enabled = true;
  fc.drift.novel_templates = 4;
  fc.drift.campaign_fraction = 0.25;
  fc.drift.campaign_spread = 8;
  fc.drift.benign_shift = 0.2;
  fc.drift.benign_shift_ramp = 24;
  const std::uint32_t onset = fc.ticks / 2;
  const serve::FleetSetup fleet = serve::make_fleet(fc);

  serve::ServeConfig sc;
  sc.threads = args.config.threads;
  sc.record_verdicts = true;
  sc.drift.enabled = true;
  sc.drift.check_interval = 16;
  sc.drift.min_shards = 2;
  sc.refresh.harvest_ticks = 16;
  sc.refresh.refresh_lag_ticks = 48;

  serve::ServeConfig frozen_cfg = sc;
  frozen_cfg.refresh.enabled = false;
  const serve::ServeReport frozen = serve::run_fleet(fleet, frozen_cfg);
  const serve::ServeReport adaptive = serve::run_fleet(fleet, sc);
  const serve::ServeCounters& c = adaptive.counters;

  const bool triggered = c.drift_triggers > 0;
  const bool swapped = c.model_swaps > 0;
  const std::uint64_t lag =
      triggered && c.drift_trigger_tick >= onset
          ? c.drift_trigger_tick - onset + 1
          : 0;
  const std::uint32_t tail_from =
      swapped ? static_cast<std::uint32_t>(c.model_swap_tick) + 8 : fc.ticks;
  const double refreshed_tail = serve::verdict_window_accuracy(
      fleet, adaptive.verdicts, tail_from, fc.ticks);
  const double frozen_tail = serve::verdict_window_accuracy(
      fleet, frozen.verdicts, tail_from, fc.ticks);
  const double headroom = 1.0 - frozen_tail;
  const double recovery =
      headroom > 1e-9 ? (refreshed_tail - frozen_tail) / headroom : 1.0;

  std::fprintf(stderr,
               "[hmd_lint] drift: onset tick %u, trigger tick %llu "
               "(lag %llu), swap tick %llu, tail accuracy frozen %.4f vs "
               "refreshed %.4f (recovery %.2f)\n",
               onset, static_cast<unsigned long long>(c.drift_trigger_tick),
               static_cast<unsigned long long>(lag),
               static_cast<unsigned long long>(c.model_swap_tick),
               frozen_tail, refreshed_tail, recovery);

  std::size_t violations = 0;
  if (!triggered || !swapped) {
    std::fprintf(stderr,
                 "[hmd_lint] drift budget exceeded: %s never happened\n",
                 !triggered ? "the drift trigger" : "the model hot-swap");
    return violations + 1;  // lag/recovery are meaningless without them
  }
  if (args.max_drift_lag > 0.0 &&
      static_cast<double>(lag) > args.max_drift_lag) {
    std::fprintf(stderr,
                 "[hmd_lint] drift budget exceeded: detection lag %llu "
                 "ticks > %.0f\n",
                 static_cast<unsigned long long>(lag), args.max_drift_lag);
    ++violations;
  }
  if (args.min_recovery > 0.0 && recovery < args.min_recovery) {
    std::fprintf(stderr,
                 "[hmd_lint] drift budget exceeded: refresh recovery %.2f "
                 "< %.2f\n",
                 recovery, args.min_recovery);
    ++violations;
  }
  return violations;
}

/// Serving budgets: drive a small fixed-seed fleet through the src/serve
/// pipeline under mild overload and check the tail latency and shed rate.
/// The shed rate is deterministic (virtual-tick admission); the p99 is
/// measured, like the --max-train-ms/--max-predict-us budgets — but over
/// budget here is a hard failure: a serving layer that sheds or lags past
/// its contract is as undeployable as an evadable model. Returns the
/// number of violations.
std::size_t lint_serving(const LintArgs& args) {
  using namespace hmd;
  if (args.max_p99_us <= 0.0 && args.max_shed_rate <= 0.0) return 0;

  serve::FleetConfig fc;
  fc.hosts = 128;
  fc.ticks = 80;
  fc.seed = args.config.corpus.seed;
  fc.train_variants = 2;
  fc.train_intervals = 10;
  fc.threads = args.config.threads;
  const serve::FleetSetup fleet = serve::make_fleet(fc);

  serve::ServeConfig sc;
  sc.threads = args.config.threads;
  sc.record_verdicts = false;
  // Mild overload: steady-state admission at 90% of the offered load
  // (bursting to one full tick), plus seeded stragglers with hedging —
  // the scenario the budgets are meant to police.
  sc.admit_per_tick = (fc.hosts * 9) / 10;
  sc.admit_burst = fc.hosts;
  sc.straggler_rate = 0.05;
  sc.straggler_reps = 2;
  const serve::ServeReport r = serve::run_fleet(fleet, sc);

  const double p99 = r.timing.e2e.p99();
  const double shed_rate =
      r.counters.emitted > 0
          ? static_cast<double>(r.counters.shed) /
                static_cast<double>(r.counters.emitted)
          : 0.0;
  std::fprintf(stderr,
               "[hmd_lint] serving: %llu hosts x %llu ticks, e2e p99 %.1f "
               "us, shed %.2f%% (%llu/%llu emitted)\n",
               static_cast<unsigned long long>(r.counters.hosts),
               static_cast<unsigned long long>(r.counters.ticks), p99,
               100.0 * shed_rate,
               static_cast<unsigned long long>(r.counters.shed),
               static_cast<unsigned long long>(r.counters.emitted));

  std::size_t violations = 0;
  if (args.max_p99_us > 0.0 && p99 > args.max_p99_us) {
    std::fprintf(stderr,
                 "[hmd_lint] serving budget exceeded: e2e p99 %.1f us > "
                 "%.1f us\n",
                 p99, args.max_p99_us);
    ++violations;
  }
  if (args.max_shed_rate > 0.0 && shed_rate > args.max_shed_rate) {
    std::fprintf(stderr,
                 "[hmd_lint] serving budget exceeded: shed rate %.2f%% > "
                 "%.2f%%\n",
                 100.0 * shed_rate, 100.0 * args.max_shed_rate);
    ++violations;
  }
  return violations;
}

/// Capture-health lint: the dataset every model verdict rests on must be
/// within the fault budgets. Returns the number of budget violations
/// (each printed to stderr).
std::size_t lint_capture(const hmd::hpc::CaptureReport& report,
                         const LintArgs& args) {
  std::size_t violations = 0;
  const auto over = [&](const char* what, double value, double budget) {
    std::fprintf(stderr,
                 "[hmd_lint] capture budget exceeded: %s %.2f%% > %.2f%%\n",
                 what, 100.0 * value, 100.0 * budget);
    ++violations;
  };
  if (report.quarantine_fraction() > args.max_quarantine)
    over("quarantined apps", report.quarantine_fraction(),
         args.max_quarantine);
  if (report.imputed_fraction() > args.max_impute)
    over("imputed cells", report.imputed_fraction(), args.max_impute);
  return violations;
}

struct CellVerdict {
  bool pass = true;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::string detail;  ///< full findings text for failing cells
};

CellVerdict lint_cell(const hmd::core::ExperimentContext& ctx,
                      const hmd::core::GridCell& cell,
                      const LintArgs& args) {
  using namespace hmd;

  const ml::ClassifierKind kind = cell.classifier;
  const ml::EnsembleKind ensemble = cell.ensemble;
  const std::size_t hpcs = cell.hpcs;

  // Shared, cached feature projection — 24 cells per HPC budget reuse it.
  const ml::Split& projected = ctx.projected_split(hpcs);
  const ml::Dataset& test = projected.test;

  auto detector = ml::make_detector(kind, ensemble, ctx.config.model_seed);
  const auto t0 = std::chrono::steady_clock::now();
  detector->train(projected.train);
  const double train_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  CellVerdict verdict;
  std::ostringstream detail;

  // Training-time budget is advisory only: a slow cell is a performance
  // regression to investigate, not a broken model.
  if (args.max_train_ms > 0.0 && train_ms > args.max_train_ms) {
    ++verdict.warnings;
    std::fprintf(stderr,
                 "[hmd_lint] warning: %s %s @ %zu HPCs trained in %.0f ms "
                 "(budget %.0f ms)\n",
                 std::string(ml::ensemble_kind_name(ensemble)).c_str(),
                 std::string(ml::classifier_kind_name(kind)).c_str(), hpcs,
                 train_ms, args.max_train_ms);
  }

  // Inference budget, same advisory semantics, sourced from the flat
  // batched backend — the engine deployment actually runs on.
  if (args.max_predict_us > 0.0 && test.num_rows() > 0) {
    const auto backend =
        ml::make_backend(*detector, ml::InferBackendKind::kFlat);
    const auto p0 = std::chrono::steady_clock::now();
    const auto scores = backend->predict_proba_batch(test);
    const double predict_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - p0)
            .count() /
        static_cast<double>(scores.size());
    if (predict_us > args.max_predict_us) {
      ++verdict.warnings;
      std::fprintf(stderr,
                   "[hmd_lint] warning: %s %s @ %zu HPCs predicts at %.3f "
                   "us/sample on the %s backend (budget %.3f us)\n",
                   std::string(ml::ensemble_kind_name(ensemble)).c_str(),
                   std::string(ml::classifier_kind_name(kind)).c_str(), hpcs,
                   predict_us, std::string(backend->name()).c_str(),
                   args.max_predict_us);
    }
  }

  // Attack-resilience budget: a hard failure, like the capture budgets —
  // a detector whose detected malware is trivially evadable under a small
  // perturbation budget is not deployable, whatever its clean accuracy.
  if (args.max_evasion > 0.0 && test.num_rows() > 0) {
    attack::PerturbationBudget budget;
    budget.max_abs_delta = 8.0;
    budget.max_rel_delta = 0.05;
    const attack::DatasetAttackResult attacked = attack::attack_dataset(
        *detector, test, budget, attack::EvasionSearchConfig{},
        /*seed=*/0xADE5A17ULL, /*threads=*/1);
    if (attacked.evasion_rate() > args.max_evasion) {
      verdict.pass = false;
      ++verdict.errors;
      detail << "  [attack-resilience] evasion rate "
             << hmd::TextTable::num(100.0 * attacked.evasion_rate(), 2)
             << "% (" << attacked.evaded << "/" << attacked.detected_clean
             << " detected malware rows flipped under "
             << attack::describe_budget(budget) << ") > budget "
             << hmd::TextTable::num(100.0 * args.max_evasion, 2) << "%\n";
    }
  }

  const auto absorb = [&](const analysis::VerifyReport& report,
                          const char* stage) {
    verdict.errors += report.error_count();
    verdict.warnings += report.warning_count();
    if (!report.ok()) {
      verdict.pass = false;
      detail << "  [" << stage << "]\n" << report.to_string();
    }
  };

  absorb(analysis::verify_model(*detector), "model-verifier");

  if (hw::hls_supported(*detector)) {
    const analysis::ModelIr ir = analysis::extract_ir(*detector);
    absorb(analysis::check_fixed_point_range(ir, args.fraction_bits),
           "fixed-point-range");

    hw::HlsOptions hls_options;
    hls_options.fraction_bits = args.fraction_bits;
    std::ostringstream code;
    hw::generate_hls_c(code, *detector, hpcs, hls_options);
    analysis::HlsLintOptions lint_options;
    lint_options.fraction_bits = args.fraction_bits;
    absorb(analysis::lint_hls_code(code.str(), lint_options), "hls-lint");

    analysis::DifferentialOptions diff_options;
    diff_options.fraction_bits = args.fraction_bits;
    diff_options.max_mismatch_rate = args.max_mismatch;
    const auto diff = analysis::differential_check(*detector, test,
                                                   diff_options);
    if (!diff.ok) {
      verdict.pass = false;
      ++verdict.errors;
      detail << "  [hls-differential] " << diff.mismatches << "/"
             << diff.probes << " probe decisions diverge ("
             << hmd::TextTable::num(100.0 * diff.mismatch_rate(), 2)
             << "% > "
             << hmd::TextTable::num(100.0 * args.max_mismatch, 2)
             << "%)\n";
    }
  }

  verdict.detail = detail.str();
  return verdict;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmd;

  const LintArgs args = parse_args(argc, argv);
  const auto ctx = benchutil::prepare(args.config, "hmd_lint");

  const std::size_t capture_violations =
      lint_capture(ctx.capture.report, args);
  const std::size_t serving_violations = lint_serving(args);
  const std::size_t drift_violations = lint_drift(args);

  // The full 96-model grid, analysed concurrently (one task per cell);
  // verdicts come back in grid order, so the report is deterministic.
  const auto cells = core::full_grid();
  const auto verdicts =
      core::map_grid(ctx, cells, args.config.threads,
                     [&](const core::GridCell& cell) {
                       return lint_cell(ctx, cell, args);
                     });

  TextTable table("hmd_lint — model integrity across the experiment grid");
  table.set_header({"Detector", "16HPC", "8HPC", "4HPC", "2HPC"});

  std::size_t failed_cells = 0;
  const std::size_t total_cells = cells.size();
  // full_grid() is classifier-major, then ensemble, then {16,8,4,2}: four
  // consecutive verdicts form one table row.
  for (std::size_t i = 0; i < verdicts.size(); i += 4) {
    std::vector<std::string> row;
    row.push_back(
        std::string(ml::ensemble_kind_name(cells[i].ensemble)) + " " +
        std::string(ml::classifier_kind_name(cells[i].classifier)));
    for (std::size_t c = 0; c < 4; ++c) {
      const CellVerdict& verdict = verdicts[i + c];
      std::string cell = verdict.pass ? "pass" : "FAIL";
      if (verdict.warnings > 0)
        cell += " (" + std::to_string(verdict.warnings) + "w)";
      if (!verdict.pass) {
        ++failed_cells;
        cell += " (" + std::to_string(verdict.errors) + "e)";
        std::cerr << "[hmd_lint] " << row.front() << " @ "
                  << cells[i + c].hpcs << " HPCs:\n"
                  << verdict.detail;
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  const hpc::CaptureReport& report = ctx.capture.report;
  // Budget accounting over a resumed campaign: the quarantine/imputation
  // fractions below are computed on the *merged* ledger (apps reused from
  // checkpoints + apps executed this session), never on this session's
  // slice alone — a resumed campaign must clear the same bar as an
  // uninterrupted one, and prepare_experiment already verified the merged
  // ledger sums to total_runs.
  if (ctx.resume_stats.checkpointing) {
    std::cout << "capture checkpoint: " << ctx.resume_stats.loaded_apps
              << "/" << report.apps.size() << " apps reused ("
              << ctx.resume_stats.loaded_runs
              << " container runs from previous sessions), "
              << ctx.resume_stats.executed_apps << " executed ("
              << ctx.resume_stats.session_runs
              << " runs this session); budgets apply to the merged ledger\n";
  }
  std::cout << "capture health: "
            << report.quarantined_apps() << "/" << report.apps.size()
            << " apps quarantined ("
            << TextTable::num(100.0 * report.quarantine_fraction(), 2)
            << "% vs " << TextTable::num(100.0 * args.max_quarantine, 2)
            << "% budget), " << report.total_imputed_cells() << "/"
            << report.total_cells() << " cells imputed ("
            << TextTable::num(100.0 * report.imputed_fraction(), 2)
            << "% vs " << TextTable::num(100.0 * args.max_impute, 2)
            << "% budget)"
            << (capture_violations == 0 ? "" : " — OVER BUDGET") << "\n";
  const bool ok = failed_cells == 0 && capture_violations == 0 &&
                  serving_violations == 0 && drift_violations == 0;
  std::cout << (ok ? "OK" : "FAILED") << ": "
            << total_cells - failed_cells << "/" << total_cells
            << " grid cells clean, " << capture_violations
            << " capture budget violations, " << serving_violations
            << " serving budget violations, " << drift_violations
            << " drift budget violations\n";
  return ok ? 0 : 1;
}
